// Hash-based transactional write set (Spear et al., PPoPP'09), used by the full
// (BaseTM) engines for deferred updates: writes are buffered here during the
// transaction and flushed to the heap only at commit (§2.1, §4.1).
//
// Requirements served:
//   * O(1) upsert and lookup keyed by target address — every transactional read must
//     first consult the write set ("read-after-write" checks, §2.2).
//   * Iteration in insertion order — commit acquires orec locks in a deterministic
//     order per transaction and flushes values in program order.
//   * O(1) amortized Clear() — descriptors are reused across every transaction a
//     thread ever runs (§4.1), so clearing must not touch the whole index. A
//     generation counter invalidates all slots at once.
#ifndef SPECTM_COMMON_WRITE_SET_H_
#define SPECTM_COMMON_WRITE_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spectm {

class WriteSet {
 public:
  struct Entry {
    void* addr;
    std::uint64_t value;
  };

  WriteSet() : slots_(kInitialSlots), mask_(kInitialSlots - 1) {}

  // Inserts or overwrites the buffered value for addr.
  void Put(void* addr, std::uint64_t value) {
    std::size_t slot = FindSlot(addr);
    if (slots_[slot].gen == gen_ && slots_[slot].addr == addr) {
      entries_[slots_[slot].index].value = value;
      return;
    }
    slots_[slot] = Slot{addr, static_cast<std::uint32_t>(entries_.size()), gen_};
    entries_.push_back(Entry{addr, value});
    if (entries_.size() * 2 > slots_.size()) {
      Grow();
    }
  }

  // Returns true and fills *value if addr has a buffered write.
  bool Lookup(void* addr, std::uint64_t* value) const {
    std::size_t slot = FindSlot(addr);
    if (slots_[slot].gen == gen_ && slots_[slot].addr == addr) {
      *value = entries_[slots_[slot].index].value;
      return true;
    }
    return false;
  }

  void Clear() {
    entries_.clear();
    ++gen_;
    if (gen_ == 0) {
      // Generation wrapped (after 2^64 transactions); hard-reset to stay sound.
      std::fill(slots_.begin(), slots_.end(), Slot{});
      gen_ = 1;
    }
  }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }

  // Insertion-ordered view for the commit protocol.
  const Entry* begin() const { return entries_.data(); }
  const Entry* end() const { return entries_.data() + entries_.size(); }

 private:
  struct Slot {
    void* addr = nullptr;
    std::uint32_t index = 0;
    std::uint64_t gen = 0;  // slot is live iff gen == WriteSet::gen_
  };

  static constexpr std::size_t kInitialSlots = 64;

  static std::size_t HashAddr(const void* addr) {
    auto x = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  // Linear probing; returns the slot holding addr (current generation) or the first
  // free-for-this-generation slot.
  std::size_t FindSlot(void* addr) const {
    std::size_t i = HashAddr(addr) & mask_;
    while (slots_[i].gen == gen_ && slots_[i].addr != addr) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  void Grow() {
    std::vector<Slot> bigger(slots_.size() * 2);
    mask_ = bigger.size() - 1;
    slots_.swap(bigger);
    for (std::uint32_t k = 0; k < entries_.size(); ++k) {
      std::size_t i = HashAddr(entries_[k].addr) & mask_;
      while (slots_[i].gen == gen_) {
        i = (i + 1) & mask_;
      }
      slots_[i] = Slot{entries_[k].addr, k, gen_};
    }
  }

  std::vector<Entry> entries_;
  mutable std::vector<Slot> slots_;
  std::size_t mask_;
  std::uint64_t gen_ = 1;
};

}  // namespace spectm

#endif  // SPECTM_COMMON_WRITE_SET_H_
