// Hash-based transactional write set (Spear et al., PPoPP'09), used by the full
// (BaseTM) engines for deferred updates: writes are buffered here during the
// transaction and flushed to the heap only at commit (§2.1, §4.1).
//
// Requirements served:
//   * O(1) upsert and lookup keyed by target address — every transactional read must
//     first consult the write set ("read-after-write" checks, §2.2). In
//     read-dominant mixes almost every such lookup MISSES, so the common case is
//     served by a descriptor-resident 64-bit address bloom: one AND + TEST
//     against a register-resident signature rejects the probe before any slot
//     array line is touched (bloom false positives only cost the ordinary probe).
//   * Iteration in insertion order — commit acquires orec locks in a deterministic
//     order per transaction and flushes values in program order.
//   * O(1) amortized Clear() — descriptors are reused across every transaction a
//     thread ever runs (§4.1), so clearing must not touch the whole index. A
//     generation counter invalidates all slots at once.
//
// Layout notes (the metadata-layout audit of this PR):
//   * Slot is repacked to 16 bytes (addr + 32-bit index + 32-bit generation), so
//     a 64-byte line holds 4 slots instead of 2 — linear probes cross half as
//     many lines and the initial table is 1 KB, not 1.5 KB. The narrower
//     generation wraps every 2^32 Clear()s; the wrap triggers the same hard
//     reset the 64-bit counter needed at 2^64 (covered by write_set_test).
//   * The class itself is cache-line aligned: the header fields consulted on
//     every transactional read (bloom_, gen_, the lane pointers) share one line
//     that never overlaps the descriptor fields around it (txdesc.h's
//     false-sharing audit), and entries_/slots_ live in separate heap blocks so
//     commit-time iteration does not evict the probe index.
#ifndef SPECTM_COMMON_WRITE_SET_H_
#define SPECTM_COMMON_WRITE_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/cacheline.h"

namespace spectm {

class alignas(kCacheLineSize) WriteSet {
 public:
  struct Entry {
    void* addr;
    std::uint64_t value;
  };

  // Owner-read statistics (plain counters; the descriptor is thread-private).
  // `bloom_misses` counts lookups rejected by the bloom alone — the fast path
  // the abl_readset_layout bench reports as evidence.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t bloom_misses = 0;
  };

  WriteSet() : mask_(kInitialSlots - 1), slots_(kInitialSlots) {}

  // Inserts or overwrites the buffered value for addr.
  void Put(void* addr, std::uint64_t value) {
    bloom_ |= AddrSignature(addr);
    std::size_t slot = FindSlot(addr);
    if (slots_[slot].gen == gen_ && slots_[slot].addr == addr) {
      entries_[slots_[slot].index].value = value;
      return;
    }
    slots_[slot] = Slot{addr, static_cast<std::uint32_t>(entries_.size()), gen_};
    entries_.push_back(Entry{addr, value});
    if (entries_.size() * 2 > slots_.size()) {
      Grow();
    }
  }

  // Returns true and fills *value if addr has a buffered write. The empty set is
  // subsumed by the bloom test (bloom_ == 0 rejects everything), so callers need
  // no separate Empty() pre-check on the read path.
  bool Lookup(void* addr, std::uint64_t* value) const {
    ++stats_.lookups;
    const std::uint64_t sig = AddrSignature(addr);
    if ((bloom_ & sig) != sig) {
      ++stats_.bloom_misses;
      return false;
    }
    std::size_t slot = FindSlot(addr);
    if (slots_[slot].gen == gen_ && slots_[slot].addr == addr) {
      *value = entries_[slots_[slot].index].value;
      return true;
    }
    return false;
  }

  void Clear() {
    entries_.clear();
    bloom_ = 0;
    ++gen_;
    if (gen_ == 0) {
      // Generation wrapped (after 2^32 transactions): a stale slot written at the
      // old gen_ == 1 would otherwise read as live again. Hard-reset to stay sound.
      std::fill(slots_.begin(), slots_.end(), Slot{});
      gen_ = 1;
    }
  }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Test hook for the generation-wrap hard reset (reaching 2^32 Clear() calls
  // organically would take hours): jumps the generation counter, invalidating
  // every slot exactly as that many Clear() calls would have.
  void SetGenerationForTest(std::uint32_t gen) {
    entries_.clear();
    bloom_ = 0;
    gen_ = gen;
  }

  // Insertion-ordered view for the commit protocol.
  const Entry* begin() const { return entries_.data(); }
  const Entry* end() const { return entries_.data() + entries_.size(); }

 private:
  // 16 bytes: 4 slots per cache line (see the layout notes above).
  struct Slot {
    void* addr = nullptr;
    std::uint32_t index = 0;
    std::uint32_t gen = 0;  // slot is live iff gen == WriteSet::gen_
  };
  static_assert(sizeof(Slot) == 16, "slot must pack to a quarter cache line");

  static constexpr std::size_t kInitialSlots = 64;

  static std::size_t HashAddr(const void* addr) {
    auto x = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  // Two-bit signature in a 64-bit filter. With the write sets this system sees
  // (a handful of entries; the paper's structures write O(height) locations),
  // the filter stays far from saturation and a miss is the overwhelmingly
  // common verdict on read-dominant mixes.
  static std::uint64_t AddrSignature(const void* addr) {
    std::uint64_t h =
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(addr)) >> 3;
    h *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hashing, as in OrecTable::ForAddr
    return (1ULL << (h >> 58)) | (1ULL << ((h >> 52) & 63));
  }

  // Linear probing; returns the slot holding addr (current generation) or the first
  // free-for-this-generation slot.
  std::size_t FindSlot(void* addr) const {
    std::size_t i = HashAddr(addr) & mask_;
    while (slots_[i].gen == gen_ && slots_[i].addr != addr) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  void Grow() {
    std::vector<Slot> bigger(slots_.size() * 2);
    mask_ = bigger.size() - 1;
    slots_.swap(bigger);
    for (std::uint32_t k = 0; k < entries_.size(); ++k) {
      std::size_t i = HashAddr(entries_[k].addr) & mask_;
      while (slots_[i].gen == gen_) {
        i = (i + 1) & mask_;
      }
      slots_[i] = Slot{entries_[k].addr, k, gen_};
    }
  }

  // Hot header: everything a read-path miss touches — the bloom, the stats it
  // bumps, and the generation — packed onto the leading line (the class is
  // line-aligned). The stats stores therefore dirty only the owner-private line
  // the miss path already owns exclusively; the slot/entry vectors follow.
  std::uint64_t bloom_ = 0;
  std::uint32_t gen_ = 1;
  mutable Stats stats_;
  std::size_t mask_;
  std::vector<Entry> entries_;
  mutable std::vector<Slot> slots_;
};

}  // namespace spectm

#endif  // SPECTM_COMMON_WRITE_SET_H_
