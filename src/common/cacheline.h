// Cache-line sizing and padding utilities.
//
// STM meta-data placement is the core subject of the paper (Figure 3): a shared orec
// table suffers extra cache-line transfers, while TVars and value-based words keep
// meta-data on the line already holding the data. Padding shared counters (the global
// clock, per-thread epochs) keeps that comparison honest by removing incidental false
// sharing from the runtime itself.
#ifndef SPECTM_COMMON_CACHELINE_H_
#define SPECTM_COMMON_CACHELINE_H_

#include <cstddef>
#include <new>
#include <utility>

namespace spectm {

// Hardcoded rather than std::hardware_destructive_interference_size: the constant must
// be ABI-stable across TUs, and 64 bytes is correct for every x86-64 and most AArch64
// parts (the paper's AMD Opteron and Intel Xeon machines both use 64-byte lines).
inline constexpr std::size_t kCacheLineSize = 64;

// Wraps a T so that it occupies at least one full cache line, preventing false sharing
// between adjacent instances (e.g. per-thread epoch slots in a contiguous array).
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

// Pause instruction for spin loops: de-pipelines the spin and yields the core's
// resources to the sibling hyperthread (matters on the paper's 128-way SMT machine).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace spectm

#endif  // SPECTM_COMMON_CACHELINE_H_
