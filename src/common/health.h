// Domain health watchdog: event-count-driven degradation detector with
// graceful-degradation responses, compiled to zero-cost no-ops unless
// SPECTM_HEALTH is defined (same build-gate pattern as failpoint.h, pinned by
// static_asserts in tests/common/health_test.cc).
//
// A misbehaving workload — an abort storm from pathological contention, a
// serial-token holder that never drains, a saturated writer ring — should
// degrade the domain's throughput, not its liveness or anyone's correctness.
// The watchdog is deliberately *event-counted*, never wall-clocked: a window
// is N attempt outcomes, a gate-hold overrun is K consecutive attempt starts
// observing a foreign serial owner. That keeps every decision deterministic
// under fixed-seed schedules (the fail-point layer's replay property extends
// to the watchdog's) and meaningful on a 1-core host, where wall-clock
// heuristics misfire on scheduler artifacts.
//
// Layering: this header knows nothing about descriptors, orecs, or the gate —
// it sees only (a) outcome booleans fed to it, (b) the thread's Backoff to
// widen, and (c) an opaque DomainTag to shard its state per TM domain. The
// domain integration (sampling CmProbe, consulting the throttle from the
// escalation decision, assembling the diagnostics snapshot) lives in
// src/tm/serial.h, which can see both sides.
//
// Responses on entering the degraded state:
//   * escalation throttling — EscalationThrottled() reports true, and the
//     contention manager declines serial escalation (an abort storm escalating
//     every streak into the serial gate converts contention into convoying);
//   * backoff widening — the phase-1 randomized backoff's spin budget is
//     multiplied (Backoff::SetWidening) until the storm subsides;
//   * a JSON diagnostics snapshot of every probe counter is assembled by the
//     integration layer and stored per-thread (LastSnapshot), so a failure in
//     an injected schedule is replayable from the dump alone.
//
// Exit is hysteretic, like every other adaptive edge in this tree (GV6 clock,
// strategy bands, CM cooldown): enter at >= 1/2 of a window aborted, exit only
// when <= 1/8 aborts — a wiggling workload keeps its state instead of flapping.
#ifndef SPECTM_COMMON_HEALTH_H_
#define SPECTM_COMMON_HEALTH_H_

#include <cstdint>

#include "src/common/backoff.h"

#if defined(SPECTM_HEALTH)
#include <atomic>
#include <string>
#include <utility>
#endif

namespace spectm {
namespace health {

// What a feed call observed crossing a window boundary. The integration layer
// reacts to kDegraded by emitting the diagnostics snapshot.
enum class Event : std::uint8_t {
  kNone = 0,
  kDegraded,   // this window crossed the storm threshold (or gate overrun)
  kRecovered,  // a degraded domain's window fell back under the exit threshold
};

// Probe counters: per-thread, per-domain, always cheap to read. Zeroed (and
// never ticked) when the watchdog is compiled out.
struct Counters {
  std::uint64_t samples = 0;                // windows closed
  std::uint64_t storms = 0;                 // abort-storm windows detected
  std::uint64_t degrade_enters = 0;         // healthy -> degraded transitions
  std::uint64_t degrade_exits = 0;          // degraded -> healthy transitions
  std::uint64_t throttled_escalations = 0;  // escalations declined while degraded
  std::uint64_t gate_overruns = 0;          // K-consecutive foreign-owner streaks
  std::uint64_t ring_saturated_windows = 0; // windows whose ring-fail delta stormed
  std::uint64_t snapshots = 0;              // diagnostics snapshots stored
};

// Tunables. The window is runtime-adjustable (tests plant small storms); the
// thresholds are compile-time — they are ratios, not magnitudes, so they need
// no per-workload tuning.
inline constexpr std::uint32_t kHealthWindowDefault = 64;
inline constexpr std::uint32_t kHealthGateHoldLimit = 128;
inline constexpr std::uint32_t kHealthDegradedWiden = 4;

#if !defined(SPECTM_HEALTH)

// ---- Disabled build: every entry point folds to a constant -------------------
//
// The functions stay templated and constexpr so call sites compile unchanged
// and the optimizer has nothing to keep: no thread-locals, no atomics, no
// strings exist in this translation mode. tests/common/health_test.cc pins
// the constant-foldability with static_asserts.

inline constexpr bool kEnabled = false;

constexpr std::uint32_t HealthWindow() { return kHealthWindowDefault; }
constexpr void SetHealthWindow(std::uint32_t) {}

template <typename Tag>
struct HealthProbe {
  static constexpr Counters Get() { return Counters{}; }
  static constexpr void Reset() {}
};

template <typename Tag>
constexpr Event OnOutcome(Backoff&, bool) {
  return Event::kNone;
}

template <typename Tag>
constexpr Event NoteAttemptStart(Backoff&, bool) {
  return Event::kNone;
}

template <typename Tag>
constexpr bool EscalationThrottled() {
  return false;
}

template <typename Tag>
constexpr bool Degraded() {
  return false;
}

template <typename Tag>
constexpr void SetRingGauge(std::uint64_t) {}

template <typename Tag>
constexpr std::uint64_t RingGauge() {
  return 0;
}

template <typename Tag>
constexpr void ResetForTest() {}

#else  // SPECTM_HEALTH

inline constexpr bool kEnabled = true;

namespace internal {

inline std::atomic<std::uint32_t>& WindowRef() {
  static std::atomic<std::uint32_t> window{kHealthWindowDefault};
  return window;
}

// Per-thread, per-domain watchdog state. Thread-local by the same argument as
// CmProbe: outcomes are observed by the thread that produced them, so the
// monitor needs no synchronization and adds no shared-cache-line traffic to
// the attempt path.
template <typename Tag>
struct ThreadState {
  std::uint32_t window_events = 0;
  std::uint32_t window_aborts = 0;
  std::uint32_t foreign_serial_streak = 0;
  std::uint64_t ring_window_anchor = 0;  // ring gauge at the window's open
  bool degraded = false;

  static ThreadState& Tls() {
    thread_local ThreadState s;
    return s;
  }
};

template <typename Tag>
inline std::string& SnapshotSlot() {
  thread_local std::string snapshot;
  return snapshot;
}

// WriterRing saturation gauge: the val engines publish their cumulative
// intersect-failure count here (a ring whose blooms keep colliding absorbs no
// skips — the domain is paying summary maintenance for nothing). Latest-value
// gauge; the window logic differences it.
template <typename Tag>
inline std::uint64_t& RingGaugeSlot() {
  thread_local std::uint64_t gauge = 0;
  return gauge;
}

}  // namespace internal

inline std::uint32_t HealthWindow() {
  return internal::WindowRef().load(std::memory_order_relaxed);
}

// Window length in outcomes; 0 is clamped to 1 (a zero window would never
// close and silently disable the watchdog).
inline void SetHealthWindow(std::uint32_t n) {
  internal::WindowRef().store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

template <typename Tag>
struct HealthProbe {
  static Counters& Tls() {
    thread_local Counters counters;
    return counters;
  }
  static Counters Get() { return Tls(); }
  static void Reset() { Tls() = Counters{}; }
};

template <typename Tag>
inline Event EnterDegraded(Backoff& backoff) {
  auto& s = internal::ThreadState<Tag>::Tls();
  auto& p = HealthProbe<Tag>::Tls();
  ++p.degrade_enters;
  s.degraded = true;
  backoff.SetWidening(kHealthDegradedWiden);
  return Event::kDegraded;
}

// Feed one attempt outcome (commit or abort). Returns a transition event when
// this outcome closed a window that crossed a threshold.
template <typename Tag>
inline Event OnOutcome(Backoff& backoff, bool committed) {
  auto& s = internal::ThreadState<Tag>::Tls();
  ++s.window_events;
  if (!committed) {
    ++s.window_aborts;
  }
  if (s.window_events < HealthWindow()) {
    return Event::kNone;
  }
  auto& p = HealthProbe<Tag>::Tls();
  ++p.samples;
  const std::uint32_t events = s.window_events;
  const std::uint32_t aborts = s.window_aborts;
  s.window_events = 0;
  s.window_aborts = 0;
  const std::uint64_t ring_now = internal::RingGaugeSlot<Tag>();
  const std::uint64_t ring_delta = ring_now - s.ring_window_anchor;
  s.ring_window_anchor = ring_now;
  // Ring saturation: on average every attempt of the window lost a skip to a
  // bloom intersection — the summary machinery is defeated, same treatment as
  // an abort storm (the widened backoff sheds the writer traffic causing it).
  const bool ring_saturated = ring_delta >= events;
  if (ring_saturated) {
    ++p.ring_saturated_windows;
  }
  if (!s.degraded) {
    if (aborts * 2 >= events) {  // enter: at least half the window aborted
      ++p.storms;
      return EnterDegraded<Tag>(backoff);
    }
    if (ring_saturated) {
      return EnterDegraded<Tag>(backoff);
    }
    return Event::kNone;
  }
  if (aborts * 8 <= events && !ring_saturated) {  // hysteretic exit
    ++p.degrade_exits;
    s.degraded = false;
    backoff.SetWidening(1);
    return Event::kRecovered;
  }
  return Event::kNone;
}

// Feed one attempt start. `foreign_serial_active` is "some OTHER descriptor
// holds the domain's serial token right now": K consecutive such observations
// mean this thread is starving behind a long serial hold, which degrades the
// domain exactly like an abort storm (and in particular stops THIS thread
// from piling its own escalation onto the convoy).
template <typename Tag>
inline Event NoteAttemptStart(Backoff& backoff, bool foreign_serial_active) {
  auto& s = internal::ThreadState<Tag>::Tls();
  if (!foreign_serial_active) {
    s.foreign_serial_streak = 0;
    return Event::kNone;
  }
  if (++s.foreign_serial_streak < kHealthGateHoldLimit) {
    return Event::kNone;
  }
  s.foreign_serial_streak = 0;
  ++HealthProbe<Tag>::Tls().gate_overruns;
  if (!s.degraded) {
    return EnterDegraded<Tag>(backoff);
  }
  return Event::kNone;
}

// Consulted by the contention manager's escalation decision: while degraded,
// serial escalation is declined (and counted), because under an abort storm
// the gate drains slower than the streaks saturate — escalating everyone
// converts contention into convoying.
template <typename Tag>
inline bool EscalationThrottled() {
  auto& s = internal::ThreadState<Tag>::Tls();
  if (!s.degraded) {
    return false;
  }
  ++HealthProbe<Tag>::Tls().throttled_escalations;
  return true;
}

template <typename Tag>
inline bool Degraded() {
  return internal::ThreadState<Tag>::Tls().degraded;
}

template <typename Tag>
inline void SetRingGauge(std::uint64_t cumulative_intersect_fails) {
  internal::RingGaugeSlot<Tag>() = cumulative_intersect_fails;
}

template <typename Tag>
inline std::uint64_t RingGauge() {
  return internal::RingGaugeSlot<Tag>();
}

// Diagnostics snapshot storage (assembled by the integration layer; see
// SerialCm::EmitHealthSnapshot in src/tm/serial.h).
template <typename Tag>
inline void StoreSnapshot(std::string json) {
  internal::SnapshotSlot<Tag>() = std::move(json);
  ++HealthProbe<Tag>::Tls().snapshots;
}

template <typename Tag>
inline const std::string& LastSnapshot() {
  return internal::SnapshotSlot<Tag>();
}

template <typename Tag>
inline void ResetForTest() {
  internal::ThreadState<Tag>::Tls() = internal::ThreadState<Tag>{};
  internal::SnapshotSlot<Tag>().clear();
  internal::RingGaugeSlot<Tag>() = 0;
  HealthProbe<Tag>::Reset();
  SetHealthWindow(kHealthWindowDefault);
}

// Flat single-object JSON assembler for the snapshot: no allocator games, no
// escaping needs (keys are identifiers, values are unsigned counters).
class SnapshotBuilder {
 public:
  SnapshotBuilder& Add(const char* key, std::uint64_t value) {
    out_ += first_ ? "{\"" : ", \"";
    first_ = false;
    out_ += key;
    out_ += "\": ";
    out_ += std::to_string(value);
    return *this;
  }

  std::string Finish() {
    if (first_) {
      return "{}";
    }
    out_ += "}";
    return std::move(out_);
  }

 private:
  std::string out_;
  bool first_ = true;
};

#endif  // SPECTM_HEALTH

}  // namespace health
}  // namespace spectm

#endif  // SPECTM_COMMON_HEALTH_H_
