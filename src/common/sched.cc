// Out-of-line bridge between the fail-point dispatch and the cooperative
// scheduler. failpoint.h declares these two functions (so FireAbort/FirePause
// can call them without including sched.h, which includes failpoint.h back);
// this TU is the only place both headers meet.
#include "src/common/sched.h"

#if defined(SPECTM_SCHED)

namespace spectm {
namespace sched {

void SchedulePointAtSite(int site) { Controller::Instance().SchedulePoint(site); }

void SpinYieldAtSite(int site) { Controller::Instance().SpinYield(site); }

}  // namespace sched
}  // namespace spectm

#endif  // SPECTM_SCHED
