// Low-order tag-bit helpers for pointer-sized words.
//
// Three distinct low bits are in play across the system:
//   bit 0 — the STM lock bit. In the `val` layout (Figure 3(c)) it is reserved in
//           every data word; in orecs it distinguishes locked/versioned bodies.
//   bit 1 — the "deleted" mark used by the linked-list and skip-list algorithms
//           (§3: "a 'deleted' bit is reserved in all of a node's forward pointers").
//           Keeping the mark out of bit 0 lets the same structure code run over the
//           val layout, where bit 0 belongs to the STM.
// Nodes are allocated with alignof >= 8, so pointers always have bits 0..2 clear.
#ifndef SPECTM_COMMON_TAGGED_H_
#define SPECTM_COMMON_TAGGED_H_

#include <cstdint>

namespace spectm {

using Word = std::uint64_t;

inline constexpr Word kLockBit = 1ULL << 0;
inline constexpr Word kDeleteBit = 1ULL << 1;

constexpr bool IsLocked(Word w) { return (w & kLockBit) != 0; }
constexpr bool IsMarked(Word w) { return (w & kDeleteBit) != 0; }
constexpr Word Mark(Word w) { return w | kDeleteBit; }
constexpr Word Unmark(Word w) { return w & ~kDeleteBit; }

template <typename T>
T* WordToPtr(Word w) {
  return reinterpret_cast<T*>(static_cast<std::uintptr_t>(w));
}

template <typename T>
Word PtrToWord(T* p) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(p));
}

}  // namespace spectm

#endif  // SPECTM_COMMON_TAGGED_H_
