// Cooperative deterministic scheduler: systematic interleaving exploration
// for the commit protocols, compiled out of production builds.
//
// The fail-point layer (PR 6/7) perturbs schedules — forced aborts, widened
// windows — but the OS scheduler still owns the interleaving, so a razor-edge
// bug needs luck twice: the perturbation must open the window AND the kernel
// must run the other thread through it. This layer removes the second coin
// flip: registered test threads run ONE AT A TIME and block at every planted
// schedule point (all SPECTM_FAILPOINT/_PAUSE sites plus the PR 8 plants in
// serial.h / epoch.cc / valstrategy.h), while a controller picks who runs
// next under a pluggable policy:
//
//   * RandomWalkPolicy — seeded uniform choice at every point;
//   * PctPolicy        — PCT-style randomized priorities with d change points
//                        (Burckhardt et al.: bug depth beats schedule count);
//   * PrefixPolicy     — replays a prescribed decision prefix and continues
//                        with the default (run the current thread), which is
//                        what Explorer drives its bounded exhaustive DFS with;
//   * ReplayPolicy     — re-executes a recorded trace tolerantly (divergences
//                        counted, never fatal), which is what ShrinkTrace
//                        uses to minimize a failing schedule.
//
// Because exactly one registered thread runs at any instant, an execution is
// a deterministic function of its decision sequence: every run yields a
// replayable trace of (schedule-point id, chosen thread), and any failing
// schedule re-executes byte-identically from that trace (asserted by
// tests/tm/sched_explore_test.cc).
//
// Termination under cooperative control: a spin-wait against a parked peer
// would hang forever, so every unbounded wait loop in the runtime carries a
// SPECTM_SCHED_SPIN plant — a forced round-robin hand-off that is NOT a
// recorded decision (keeping exhaustive traces finite) but is itself
// deterministic (same decisions => same forced switches).
//
// Gated on SPECTM_SCHED (CMake option; implies SPECTM_FAILPOINTS). When OFF,
// the whole namespace folds to constexpr no-ops, pinned by static_assert in
// tests/common/sched_test.cc — identical to the failpoint/health idiom.
#ifndef SPECTM_COMMON_SCHED_H_
#define SPECTM_COMMON_SCHED_H_

#include <cstdint>

#include "src/common/failpoint.h"

#if defined(SPECTM_SCHED)
#include <algorithm>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#endif

namespace spectm {
namespace sched {

#if defined(SPECTM_SCHED)

inline constexpr bool kEnabled = true;

// Synthetic point ids used by the controller itself. Planted sites pass
// failpoint::Site values (>= 0); tests plant their own points with TestPoint
// using ids >= kTestPointBase to keep traces readable.
inline constexpr int kPointStart = -2;       // initial "who runs first" decision
inline constexpr int kPointThreadExit = -1;  // a thread finished; pick a successor
inline constexpr int kPointYield = -3;       // forced spin-yield hand-off (never recorded)
inline constexpr int kTestPointBase = 1000;

// One recorded decision: at schedule point `site`, thread `thread` was chosen
// to run. A run's trace is the full decision sequence; feeding it back through
// ReplayPolicy re-executes the schedule.
struct Decision {
  int site = 0;
  int thread = 0;
};
using Trace = std::vector<Decision>;

// One decision point as the controller saw it: who was running, who was
// runnable, who got picked. Frames are only recorded where a real choice
// existed (>= 2 runnable threads); single-successor points cost nothing in
// the trace and create no DFS branches.
struct Frame {
  int site = 0;
  int current_before = -1;    // thread running when the point fired; -1 at start/exit
  std::vector<int> runnable;  // ascending thread indices still alive
  int chosen = -1;
};

struct RunRecord {
  std::vector<Frame> frames;          // every recorded decision, in order
  std::uint64_t points = 0;           // schedule points hit (recorded or not)
  std::uint64_t forced_switches = 0;  // spin-yield / post-cap hand-offs
  std::uint64_t preemptions = 0;      // decisions that switched away from a runnable thread
  std::uint64_t body_exceptions = 0;  // exceptions that escaped a worker body
  bool point_limit_hit = false;       // run exceeded max_points (degraded to round-robin)
};

inline Trace TraceOf(const RunRecord& r) {
  Trace t;
  t.reserve(r.frames.size());
  for (const Frame& f : r.frames) {
    t.push_back(Decision{f.site, f.chosen});
  }
  return t;
}

// "site:thread" pairs, comma-joined — the printable form a failing test
// reports; docs/TESTING.md shows how to paste it back into a ReplayPolicy.
inline std::string FormatTrace(const Trace& t) {
  std::ostringstream out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    out << (i == 0 ? "" : ",") << t[i].site << ':' << t[i].thread;
  }
  return out.str();
}

// Scheduling policy: consulted at every recorded decision point. `runnable`
// is ascending and non-empty; `current` is the thread that hit the point, or
// -1 when the previous runner just finished (or at the start point). The
// return value must be a member of `runnable` (the controller falls back to
// the default rule otherwise).
class Policy {
 public:
  virtual ~Policy() = default;
  virtual void BeginRun(int nthreads) { static_cast<void>(nthreads); }
  virtual int Choose(std::uint64_t point_index, int site, int current,
                     const std::vector<int>& runnable) = 0;
};

namespace internal {

// The non-preemptive default: keep running whoever is running; at start/exit
// points (no current) run the lowest-indexed thread. DFS enumerates
// alternatives against exactly this rule, so it lives in one place.
inline int DefaultChoice(int current, const std::vector<int>& runnable) {
  if (current >= 0 &&
      std::find(runnable.begin(), runnable.end(), current) != runnable.end()) {
    return current;
  }
  return runnable.front();
}

inline bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace internal

// (a) Seeded random walk: uniform choice at every decision point. BeginRun
// re-derives the stream from the seed, so the same (seed, bodies) pair yields
// the same schedule on every run — replay determinism for free.
class RandomWalkPolicy : public Policy {
 public:
  explicit RandomWalkPolicy(std::uint64_t seed) : seed_(seed ? seed : 1), rng_(seed_) {}

  void BeginRun(int nthreads) override {
    static_cast<void>(nthreads);
    rng_ = Xorshift128Plus(seed_);
  }

  int Choose(std::uint64_t, int, int, const std::vector<int>& runnable) override {
    return runnable[static_cast<std::size_t>(
        rng_.NextBounded(static_cast<std::uint64_t>(runnable.size())))];
  }

 private:
  std::uint64_t seed_;
  Xorshift128Plus rng_;
};

// (b) PCT-style randomized priorities: each thread gets a random distinct
// priority at run start; the highest-priority runnable thread always runs;
// at each of d randomly chosen change points the running thread's priority
// drops below everyone's. A bug of depth d is found with probability
// >= 1/(n * k^(d-1)) per run (k = schedule length bound), independent of how
// astronomically many schedules exist.
class PctPolicy : public Policy {
 public:
  PctPolicy(std::uint64_t seed, int change_points, std::uint64_t horizon = 1000)
      : seed_(seed ? seed : 1), d_(change_points), horizon_(horizon ? horizon : 1) {}

  void BeginRun(int nthreads) override {
    Xorshift128Plus rng(seed_);
    prio_.assign(static_cast<std::size_t>(nthreads), 0);
    for (int i = 0; i < nthreads; ++i) {
      prio_[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(i) + 1;
    }
    // Fisher-Yates over the initial priorities.
    for (int i = nthreads - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(i) + 1));
      std::swap(prio_[static_cast<std::size_t>(i)], prio_[static_cast<std::size_t>(j)]);
    }
    change_points_.clear();
    for (int i = 0; i < d_; ++i) {
      change_points_.push_back(rng.NextBounded(horizon_));
    }
    std::sort(change_points_.begin(), change_points_.end());
    low_water_ = 0;
  }

  int Choose(std::uint64_t point_index, int, int current,
             const std::vector<int>& runnable) override {
    if (current >= 0 &&
        std::binary_search(change_points_.begin(), change_points_.end(), point_index)) {
      prio_[static_cast<std::size_t>(current)] = --low_water_;  // drops below everyone
    }
    int best = runnable.front();
    for (const int t : runnable) {
      if (prio_[static_cast<std::size_t>(t)] > prio_[static_cast<std::size_t>(best)]) {
        best = t;
      }
    }
    return best;
  }

 private:
  std::uint64_t seed_;
  int d_;
  std::uint64_t horizon_;
  std::vector<std::int64_t> prio_;
  std::vector<std::uint64_t> change_points_;
  std::int64_t low_water_ = 0;
};

// Replays a recorded trace positionally and tolerantly: a prescribed thread
// that is no longer runnable, or a site id that no longer matches, counts a
// divergence and falls back to the default rule instead of failing the run.
// Past the end of the trace the default rule continues — which is what makes
// trace SHRINKING sound: deleting a decision shifts alignment, the replay
// diverges, and the verifier decides whether the violation still reproduces.
class ReplayPolicy : public Policy {
 public:
  explicit ReplayPolicy(Trace trace) : trace_(std::move(trace)) {}

  void BeginRun(int) override {
    pos_ = 0;
    divergence = 0;
  }

  int Choose(std::uint64_t, int site, int current,
             const std::vector<int>& runnable) override {
    if (pos_ < trace_.size()) {
      const Decision d = trace_[pos_++];
      if (internal::Contains(runnable, d.thread)) {
        if (d.site != site) {
          ++divergence;
        }
        return d.thread;
      }
      ++divergence;
    }
    return internal::DefaultChoice(current, runnable);
  }

  std::uint64_t divergence = 0;  // tests assert == 0 for byte-identical replay

 private:
  Trace trace_;
  std::size_t pos_ = 0;
};

// (c) The DFS driver's policy: prescribed thread choices for the first
// prefix.size() decisions, default rule after. Unlike ReplayPolicy this
// replays by thread index only — the Explorer owns site bookkeeping through
// the returned frames.
class PrefixPolicy : public Policy {
 public:
  explicit PrefixPolicy(std::vector<int> prefix) : prefix_(std::move(prefix)) {}

  void BeginRun(int) override {
    pos_ = 0;
    divergence = 0;
  }

  int Choose(std::uint64_t, int, int current,
             const std::vector<int>& runnable) override {
    if (pos_ < prefix_.size()) {
      const int t = prefix_[pos_++];
      if (internal::Contains(runnable, t)) {
        return t;
      }
      ++divergence;  // the run under this prefix is not the recorded one
    }
    return internal::DefaultChoice(current, runnable);
  }

  std::uint64_t divergence = 0;

 private:
  std::vector<int> prefix_;
  std::size_t pos_ = 0;
};

// The controller: owns the one-runner-at-a-time discipline. Worker bodies run
// in fresh std::threads; each registers a dense index in thread-local state,
// parks on a condition variable, and runs only while `current_ == index`.
// Planted sites call SchedulePoint/SpinYield through the failpoint bridge;
// unregistered threads (the test main thread, production code outside a run)
// fall through instantly.
class Controller {
 public:
  static Controller& Instance() {
    static Controller* c = new Controller;  // leaked: outlives TLS destructors
    return *c;
  }

  static constexpr std::uint64_t kDefaultMaxPoints = 1u << 20;

  RunRecord Run(std::vector<std::function<void()>> bodies, Policy& policy,
                std::uint64_t max_points = kDefaultMaxPoints) {
    const int n = static_cast<int>(bodies.size());
    {
      std::lock_guard<std::mutex> lk(mu_);
      active_ = true;
      policy_ = &policy;
      nthreads_ = n;
      finished_.assign(static_cast<std::size_t>(n), 0);
      started_ = 0;
      current_ = -1;
      rec_ = RunRecord{};
      max_points_ = max_points;
      policy.BeginRun(n);
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([this, i, body = std::move(bodies[static_cast<std::size_t>(i)])] {
        tl_index_ = i;
        {
          std::unique_lock<std::mutex> lk(mu_);
          // The run begins only once every worker is parked: the first
          // decision (kPointStart) then sees the complete runnable set.
          if (++started_ == nthreads_) {
            PickNextLocked(kPointStart, -1);
          }
          cv_.wait(lk, [&] { return current_ == i; });
        }
        try {
          body();
        } catch (...) {
          std::lock_guard<std::mutex> lk(mu_);
          ++rec_.body_exceptions;
        }
        {
          std::lock_guard<std::mutex> lk(mu_);
          finished_[static_cast<std::size_t>(i)] = 1;
          current_ = -1;
          PickNextLocked(kPointThreadExit, -1);
        }
        tl_index_ = -1;
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    std::lock_guard<std::mutex> lk(mu_);
    active_ = false;
    policy_ = nullptr;
    return rec_;
  }

  // Decision point: the policy picks who runs next; the caller parks until it
  // is (re)chosen. No-op off a run or on an unregistered thread. Never throws.
  void SchedulePoint(int site) {
    const int self = tl_index_;
    if (self < 0) {
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (!active_ || current_ != self) {
      return;  // defensive: never park a thread the controller didn't run
    }
    PickNextLocked(site, self);
    cv_.wait(lk, [&] { return current_ == self; });
  }

  // Forced hand-off for spin-wait loops: control passes to the next runnable
  // thread in cyclic index order — deterministic, never recorded, so a thread
  // spinning against a parked lock holder always lets the holder finish
  // (closes the PR 6 one-core livelock caveat) without branching the DFS.
  void SpinYield(int site) {
    static_cast<void>(site);
    const int self = tl_index_;
    if (self < 0) {
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (!active_ || current_ != self) {
      return;
    }
    int next = self;
    for (int k = 1; k < nthreads_; ++k) {
      const int cand = (self + k) % nthreads_;
      if (!finished_[static_cast<std::size_t>(cand)]) {
        next = cand;
        break;
      }
    }
    if (next == self) {
      return;  // nobody else alive: keep spinning (loop exit is up to the protocol)
    }
    ++rec_.points;
    ++rec_.forced_switches;
    current_ = next;
    cv_.notify_all();
    cv_.wait(lk, [&] { return current_ == self; });
  }

  bool ActiveOnThisThread() const { return tl_index_ >= 0; }

 private:
  Controller() = default;

  // mu_ held. Chooses the next runner, records a frame when a real choice
  // existed, and wakes the winner. After max_points the run degrades to
  // round-robin (unrecorded) so a runaway schedule still terminates.
  void PickNextLocked(int site, int current) {
    std::vector<int> runnable;
    for (int i = 0; i < nthreads_; ++i) {
      if (!finished_[static_cast<std::size_t>(i)]) {
        runnable.push_back(i);
      }
    }
    if (runnable.empty()) {
      cv_.notify_all();
      return;
    }
    ++rec_.points;
    int chosen;
    if (rec_.points > max_points_) {
      rec_.point_limit_hit = true;
      chosen = internal::DefaultChoice(current, runnable);
      if (current >= 0) {  // round-robin past the cap, never stick on one thread
        for (int k = 1; k <= nthreads_; ++k) {
          const int cand = (current + k) % nthreads_;
          if (!finished_[static_cast<std::size_t>(cand)]) {
            chosen = cand;
            break;
          }
        }
      }
      ++rec_.forced_switches;
    } else if (runnable.size() == 1) {
      chosen = runnable.front();
    } else {
      Frame f;
      f.site = site;
      f.current_before = current;
      f.runnable = runnable;
      f.chosen = policy_->Choose(static_cast<std::uint64_t>(rec_.frames.size()), site,
                                 current, runnable);
      if (!internal::Contains(runnable, f.chosen)) {
        f.chosen = internal::DefaultChoice(current, runnable);
      }
      if (current >= 0 && f.chosen != current) {
        ++rec_.preemptions;
      }
      rec_.frames.push_back(f);
      chosen = f.chosen;
    }
    current_ = chosen;
    cv_.notify_all();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool active_ = false;
  int current_ = -1;
  int nthreads_ = 0;
  int started_ = 0;
  std::vector<char> finished_;
  std::uint64_t max_points_ = 0;
  Policy* policy_ = nullptr;
  RunRecord rec_;

  static inline thread_local int tl_index_ = -1;
};

// Test-body plants: an arbitrary decision point / forced yield, for model
// programs (the canary) and converted torture bodies. Ids >= kTestPointBase
// by convention so traces distinguish them from failpoint::Site plants.
inline void TestPoint(int id) { Controller::Instance().SchedulePoint(id); }
inline void Yield() { Controller::Instance().SpinYield(kPointYield); }
inline bool SchedActive() { return Controller::Instance().ActiveOnThisThread(); }

// Bounded exhaustive exploration: depth-first enumeration of every decision
// sequence reachable with at most `preemption_bound` preemptions (a decision
// that switches away from a still-runnable thread; free switches at thread
// exit don't count). Determinism makes this sound: the same prefix always
// reproduces the same frames up to the first changed decision, so advancing
// the deepest frame to its next alternative walks the full bounded tree
// exactly once (CHESS-style iterative context bounding).
class Explorer {
 public:
  struct Options {
    int preemption_bound = 2;
    std::uint64_t max_points = Controller::kDefaultMaxPoints;
    std::uint64_t max_schedules = 0;  // 0 = no cap
    bool stop_on_violation = true;
  };

  struct Result {
    std::uint64_t schedules = 0;        // runs executed
    std::uint64_t truncated = 0;        // runs that hit max_points
    std::uint64_t violations = 0;       // runs whose check() failed
    bool violation_found = false;
    Trace violation_trace;              // first failing run's decision trace
    bool frontier_exhausted = false;    // true iff the bounded tree was fully walked
    std::uint64_t divergences = 0;      // prefix replays that failed to reproduce
  };

  // `make_bodies` builds a FRESH set of worker bodies (and the state they
  // mutate) per schedule; `check` inspects that state after the run and
  // returns true when the invariant held.
  static Result Explore(const std::function<std::vector<std::function<void()>>()>& make_bodies,
                        const std::function<bool()>& check, const Options& opt) {
    Result res;
    std::vector<int> prefix;
    while (true) {
      PrefixPolicy policy(prefix);
      const RunRecord rec =
          Controller::Instance().Run(make_bodies(), policy, opt.max_points);
      ++res.schedules;
      res.divergences += policy.divergence;
      if (rec.point_limit_hit) {
        ++res.truncated;
      }
      if (!check()) {
        ++res.violations;
        if (!res.violation_found) {
          res.violation_found = true;
          res.violation_trace = TraceOf(rec);
        }
        if (opt.stop_on_violation) {
          return res;
        }
      }
      if (opt.max_schedules != 0 && res.schedules >= opt.max_schedules) {
        return res;
      }
      if (!NextPrefix(rec.frames, opt.preemption_bound, &prefix)) {
        res.frontier_exhausted = true;
        return res;
      }
    }
  }

 private:
  // A switch away from a runnable current thread costs one preemption.
  static bool IsPreemption(const Frame& f, int choice) {
    return f.current_before >= 0 && choice != f.current_before &&
           internal::Contains(f.runnable, f.current_before);
  }

  // Canonical sibling order at a frame: the default choice first, then the
  // remaining runnable threads ascending. The first run (empty prefix) takes
  // the default everywhere, so DFS visits each bounded schedule exactly once.
  static std::vector<int> CanonicalOrder(const Frame& f) {
    std::vector<int> order;
    const int def = internal::DefaultChoice(f.current_before, f.runnable);
    order.push_back(def);
    for (const int t : f.runnable) {
      if (t != def) {
        order.push_back(t);
      }
    }
    return order;
  }

  // Backtracks: finds the deepest frame with an untried sibling whose
  // preemption cost stays within the bound and emits the next prefix.
  static bool NextPrefix(const std::vector<Frame>& frames, int bound,
                         std::vector<int>* prefix) {
    std::vector<int> used(frames.size() + 1, 0);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      used[i + 1] = used[i] + (IsPreemption(frames[i], frames[i].chosen) ? 1 : 0);
    }
    for (std::size_t i = frames.size(); i-- > 0;) {
      const Frame& f = frames[i];
      const std::vector<int> order = CanonicalOrder(f);
      const std::size_t pos = static_cast<std::size_t>(
          std::find(order.begin(), order.end(), f.chosen) - order.begin());
      for (std::size_t j = pos + 1; j < order.size(); ++j) {
        if (used[i] + (IsPreemption(f, order[j]) ? 1 : 0) <= bound) {
          prefix->clear();
          for (std::size_t k = 0; k < i; ++k) {
            prefix->push_back(frames[k].chosen);
          }
          prefix->push_back(order[j]);
          return true;
        }
      }
    }
    return false;
  }
};

// Greedy trace minimizer: tail truncation (binary, then one-by-one), then
// single-deletion passes to a fixpoint, bounded by `max_attempts` replays.
// `verify` re-executes the candidate schedule and returns true when the
// violation still reproduces; tolerant replay makes every candidate runnable.
inline Trace ShrinkTrace(Trace trace, const std::function<bool(const Trace&)>& verify,
                         int max_attempts = 256) {
  int attempts = 0;
  auto Try = [&](const Trace& cand) {
    ++attempts;
    return verify(cand);
  };
  if (!Try(trace)) {
    return trace;  // not reproducible as handed in; nothing to shrink against
  }
  while (trace.size() > 1 && attempts < max_attempts) {
    Trace half(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(trace.size() / 2));
    if (!Try(half)) {
      break;
    }
    trace = std::move(half);
  }
  while (!trace.empty() && attempts < max_attempts) {
    Trace shorter(trace.begin(), trace.end() - 1);
    if (!Try(shorter)) {
      break;
    }
    trace = std::move(shorter);
  }
  bool progress = true;
  while (progress && attempts < max_attempts) {
    progress = false;
    for (std::size_t i = 0; i < trace.size() && attempts < max_attempts; ++i) {
      Trace cand = trace;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (Try(cand)) {
        trace = std::move(cand);
        progress = true;
        break;
      }
    }
  }
  return trace;
}

#else  // !SPECTM_SCHED

inline constexpr bool kEnabled = false;

// The OFF shape mirrors health.h: constexpr no-ops a production caller can
// keep in-line, pinned to compile-time nothingness by sched_test.cc.
constexpr bool SchedActive() { return false; }
constexpr void TestPoint(int id) { static_cast<void>(id); }
constexpr void Yield() {}

#endif  // SPECTM_SCHED

}  // namespace sched
}  // namespace spectm

#endif  // SPECTM_COMMON_SCHED_H_
