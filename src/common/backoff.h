// Contention management by randomized linear backoff.
//
// §4.1: "upon conflict, a transaction aborts itself, and waits for a randomized
// linear time before restarting (as in the first phase of SwissTM's two-phase
// contention manager)". The wait is a bounded spin: the expected delay grows
// linearly with the number of consecutive aborts, with a uniformly random factor to
// de-synchronize repeat offenders.
//
// This is only the FIRST phase: `attempts()` is the abort streak, and the second
// phase (serial-irrevocable escalation past kSerialEscalationStreak) lives in
// src/tm/serial.h, which watches this streak through SerialCm.
#ifndef SPECTM_COMMON_BACKOFF_H_
#define SPECTM_COMMON_BACKOFF_H_

#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/rng.h"

namespace spectm {

class Backoff {
 public:
  // Public so tests and probes can state the worst-case delay honestly:
  // one wait is bounded by kMaxAttemptFactor * kSpinsPerAttempt (~65k) spins.
  static constexpr std::uint64_t kSpinsPerAttempt = 64;
  static constexpr std::uint64_t kMaxAttemptFactor = 1024;  // caps worst-case delay

  explicit Backoff(std::uint64_t seed = 0x9e3779b9ULL) : rng_(seed) {}

  // Bound on the health watchdog's temporary widening multiplier, so a buggy
  // caller cannot turn the backoff into an unbounded stall.
  static constexpr std::uint64_t kMaxWidening = 8;

  // Call after an abort; spins for a random time linear in the abort streak.
  // Returns the number of spins actually waited so the caller can account the
  // delay (CmProbe::backoff_spins) instead of it vanishing into dark time.
  std::uint64_t OnAbort() {
    if (attempts_ < kMaxAttemptFactor) {
      ++attempts_;
    }
    // Every contention-abort retry path in every engine funnels through here
    // (SerialCm::NoteAbortBackoff), so one forced scheduler hand-off per wait
    // guarantees an aborting transaction under cooperative control always
    // yields to the peer it conflicted with — retry loops terminate. The
    // spin count below varies with the backoff RNG but steers no branch, so
    // schedules stay a deterministic function of the decision sequence.
    SPECTM_SCHED_SPIN(failpoint::Site::kBackoffWait);
    const std::uint64_t spins =
        rng_.NextBounded(attempts_ * kSpinsPerAttempt * widening_ + 1);
    for (std::uint64_t i = 0; i < spins; ++i) {
      CpuRelax();
    }
    return spins;
  }

  // Call after a successful commit to reset the streak.
  void OnCommit() { attempts_ = 0; }

  // Consecutive-abort streak: the watchdog signal for serial escalation.
  std::uint64_t attempts() const { return attempts_; }

  // Graceful-degradation hook (src/common/health.h): while a domain is in an
  // abort storm, the watchdog multiplies the expected wait to shed offered
  // load, and restores 1 on recovery. Clamped; never changes the streak.
  void SetWidening(std::uint64_t factor) {
    widening_ = factor == 0 ? 1 : (factor > kMaxWidening ? kMaxWidening : factor);
  }
  std::uint64_t widening() const { return widening_; }

 private:
  Xorshift128Plus rng_;
  std::uint64_t attempts_ = 0;
  std::uint64_t widening_ = 1;
};

}  // namespace spectm

#endif  // SPECTM_COMMON_BACKOFF_H_
