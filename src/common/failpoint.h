// Deterministic fail-point fault injection, compiled out of production builds.
//
// The PR-2/PR-4 skip-soundness bugs both lived in windows a few instructions
// wide (the orec sandwich, the counter-bump/ring-publish gap). Plain stress
// tests hit such windows by luck; a fail point turns luck into a schedule: at
// each named site an armed build can (a) force the transaction to abort, or
// (b) inject a delay/yield to widen the race window, both driven by a seeded
// per-thread RNG so a failing schedule replays from its seed.
//
// The whole layer is gated on SPECTM_FAILPOINTS (CMake option of the same
// name). When the gate is off the macros fold to compile-time constants — no
// loads, no branches, nothing for the optimizer to even see — which is
// asserted by tests/common/failpoint_test.cc via static_assert.
#ifndef SPECTM_COMMON_FAILPOINT_H_
#define SPECTM_COMMON_FAILPOINT_H_

#include <cstdint>

#if defined(SPECTM_FAILPOINTS)
#include <atomic>
#include <thread>

#include "src/common/cacheline.h"
#include "src/common/rng.h"
#include "src/common/thread_registry.h"
#endif

namespace spectm {

#if defined(SPECTM_SCHED)
namespace sched {
// Bridge into the cooperative scheduler (src/common/sched.h), declared here and
// defined in src/common/sched.cc so this header never includes sched.h (which
// includes it back). Both are no-ops on threads not registered with a run.
void SchedulePointAtSite(int site);  // decision point: the controller picks who runs
void SpinYieldAtSite(int site);      // forced hand-off out of a spin-wait loop
}  // namespace sched
#endif

namespace failpoint {

// Injection sites sit at the protocol's razor edges — the spots where the
// validation soundness argument (docs/VALIDATION.md) depends on ordering.
enum class Site : int {
  kPostReadPreSandwich = 0,  // between the data load and the version re-check
  kPreValidate,              // before a skip check / read-set walk
  kPreBump,                  // before the global commit-counter fetch_add
  kPreRingPublish,           // the counter-bump -> ring-publish tail window
  kPreStripeBump,            // before the per-stripe counter bumps
  kLockAcquire,              // before a lock-word CAS
  // Scheduler-era sites (PR 8): planted with SPECTM_SCHED_POINT/_SPIN, so
  // they never inject faults — they only mark reach and (under SPECTM_SCHED)
  // hand the interleaving decision to the cooperative scheduler. Several sit
  // on exception-unwind paths, where an injected throw would std::terminate.
  kSerialGateEnter,    // committer flag raised, owner not yet examined
  kSerialGateExit,     // before the committer flag retract
  kSerialTokenAcquire, // serial CAS/drain loop, and the instant the drain ends
  kSerialTokenRelease, // before the owner-pointer clearing store
  kEpochAdvance,       // epoch advance/reclaim scan entry
  kEpochRetire,        // object pushed into a limbo bag
  kPostRingPublish,    // ring entry published, locks still held
  kBackoffWait,        // once per contention-abort backoff wait
  // MVCC sites (PR 9): the version-chain publication window and the snapshot
  // reclamation edges. kVersionPublish is a pause site between the displaced
  // value's chain push and the lazy stamp CAS — the window where an unstamped
  // head is visible to snapshot readers; the other two are pure schedule
  // points on the done-stamp scan and the node-reclaim step.
  kVersionPublish,     // chain node pushed, stamp CAS not yet executed
  kDoneStampAdvance,   // done-stamp scan over the pinned-snapshot registry
  kVersionRetire,      // version node unlinked and handed to reclamation
  kCount,
};

inline constexpr int kSiteCount = static_cast<int>(Site::kCount);

inline const char* SiteName(Site s) {
  switch (s) {
    case Site::kPostReadPreSandwich:
      return "post-read-pre-sandwich";
    case Site::kPreValidate:
      return "pre-validate";
    case Site::kPreBump:
      return "pre-bump";
    case Site::kPreRingPublish:
      return "pre-ring-publish";
    case Site::kPreStripeBump:
      return "pre-stripe-bump";
    case Site::kLockAcquire:
      return "lock-acquire";
    case Site::kSerialGateEnter:
      return "serial-gate-enter";
    case Site::kSerialGateExit:
      return "serial-gate-exit";
    case Site::kSerialTokenAcquire:
      return "serial-token-acquire";
    case Site::kSerialTokenRelease:
      return "serial-token-release";
    case Site::kEpochAdvance:
      return "epoch-advance";
    case Site::kEpochRetire:
      return "epoch-retire";
    case Site::kPostRingPublish:
      return "post-ring-publish";
    case Site::kBackoffWait:
      return "backoff-wait";
    case Site::kVersionPublish:
      return "version-publish";
    case Site::kDoneStampAdvance:
      return "done-stamp-advance";
    case Site::kVersionRetire:
      return "version-retire";
    default:
      return "?";
  }
}

#if defined(SPECTM_FAILPOINTS)

inline constexpr bool kEnabled = true;

// Per-site arming. All fields are probabilities in percent except
// `delay_spins` (CpuRelax iterations per injected delay) and `yield_instead`
// (os-yield instead of spinning, for single-core hosts where spinning cannot
// widen a window).
struct SiteConfig {
  std::atomic<std::uint32_t> abort_pct{0};
  std::atomic<std::uint32_t> delay_pct{0};
  std::atomic<std::uint32_t> delay_spins{0};
  std::atomic<bool> yield_instead{false};
  std::atomic<std::uint32_t> throw_pct{0};
};

// Exception injection (PR 7): a throw-armed site raises InjectedFault instead
// of returning a forced-abort decision — a foreign exception erupting at the
// protocol's razor edges, exactly where user code can never throw but the
// unwind machinery (src/tm/txguard.h) must still hold. The engines do NOT
// catch this type anywhere; it must unwind through their guards and out of
// the retry loop with every lock restored and the serial token released
// (tests/tm/exception_safety_test.cc asserts that, site by site).
struct InjectedFault {
  Site site;
};

namespace internal {

inline SiteConfig& Config(Site s) {
  static SiteConfig configs[kSiteCount];
  return configs[static_cast<int>(s)];
}

inline std::atomic<std::uint64_t>& HitCounter(Site s) {
  static CacheAligned<std::atomic<std::uint64_t>> hits[kSiteCount];
  return hits[static_cast<int>(s)].value;
}

// Reach counters, distinct from HitCounter: bumped every time control REACHES
// a planted site, armed or not. Hits() counting only fired injections means a
// silently-dead site (planted but never executed) is invisible to the suite;
// SiteHits() below makes "every planted site actually runs" assertable
// (tests/tm/exception_safety_test.cc).
inline std::atomic<std::uint64_t>& ReachCounter(Site s) {
  static CacheAligned<std::atomic<std::uint64_t>> reaches[kSiteCount];
  return reaches[static_cast<int>(s)].value;
}

inline std::atomic<std::uint64_t>& GlobalSeed() {
  static std::atomic<std::uint64_t> seed{0x5eedf417ULL};
  return seed;
}

// Bumped on every SetSeed so live threads discard their cached RNG state and
// re-derive it from the new seed — reruns replay without restarting threads.
inline std::atomic<std::uint64_t>& SeedEpoch() {
  static std::atomic<std::uint64_t> epoch{0};
  return epoch;
}

// Per-thread RNG derived from (global seed, dense thread slot) so a fixed
// seed yields a fixed per-thread decision stream.
inline Xorshift128Plus& ThreadRng() {
  struct TlState {
    Xorshift128Plus rng{0};
    std::uint64_t epoch = ~std::uint64_t{0};
  };
  thread_local TlState tl;
  const std::uint64_t epoch = SeedEpoch().load(std::memory_order_acquire);
  if (tl.epoch != epoch) {
    std::uint64_t mix = GlobalSeed().load(std::memory_order_acquire) +
                        0x9e3779b97f4a7c15ULL *
                            static_cast<std::uint64_t>(ThreadRegistry::CurrentId() + 1);
    tl.rng = Xorshift128Plus(Xorshift128Plus::SplitMix64(&mix));
    tl.epoch = epoch;
  }
  return tl.rng;
}

}  // namespace internal

inline void SetSeed(std::uint64_t seed) {
  internal::GlobalSeed().store(seed, std::memory_order_release);
  internal::SeedEpoch().fetch_add(1, std::memory_order_acq_rel);
}

inline void Arm(Site s, std::uint32_t abort_pct, std::uint32_t delay_pct = 0,
                std::uint32_t delay_spins = 0, bool yield_instead = false) {
  SiteConfig& c = internal::Config(s);
  c.delay_pct.store(delay_pct, std::memory_order_relaxed);
  c.delay_spins.store(delay_spins, std::memory_order_relaxed);
  c.yield_instead.store(yield_instead, std::memory_order_relaxed);
  // abort_pct last (release): a site is "armed" once this is visible.
  c.abort_pct.store(abort_pct, std::memory_order_release);
}

// Arms exception injection at `s`: each fire throws InjectedFault with
// probability throw_pct (drawn from the same per-thread seeded stream as the
// abort/delay decisions, so a schedule mixing all three replays from one
// seed). Orthogonal to Arm(): a site can force aborts AND throw.
inline void ArmThrow(Site s, std::uint32_t throw_pct) {
  internal::Config(s).throw_pct.store(throw_pct, std::memory_order_release);
}

inline void Disarm(Site s) {
  Arm(s, 0, 0, 0, false);
  ArmThrow(s, 0);
}

inline void DisarmAll() {
  for (int i = 0; i < kSiteCount; ++i) {
    Disarm(static_cast<Site>(i));
  }
}

inline std::uint64_t Hits(Site s) {
  return internal::HitCounter(s).load(std::memory_order_relaxed);
}

inline void ResetHits() {
  for (int i = 0; i < kSiteCount; ++i) {
    internal::HitCounter(static_cast<Site>(i)).store(0, std::memory_order_relaxed);
  }
}

// Marks `s` as reached. Called at the top of FireAbort/FirePause and by the
// SPECTM_SCHED_POINT/_SPIN macros; no RNG draw, so arming-era decision
// streams are untouched (same seed => same abort/delay/throw sequence).
inline void MarkReached(Site s) {
  internal::ReachCounter(s).fetch_add(1, std::memory_order_relaxed);
}

// Times control reached `s` since the last ResetSiteHits(), fired or not.
inline std::uint64_t SiteHits(Site s) {
  return internal::ReachCounter(s).load(std::memory_order_relaxed);
}

inline void ResetSiteHits() {
  for (int i = 0; i < kSiteCount; ++i) {
    internal::ReachCounter(static_cast<Site>(i)).store(0, std::memory_order_relaxed);
  }
}

namespace internal {

inline void MaybeDelay(Site s, SiteConfig& c) {
  const std::uint32_t delay_pct = c.delay_pct.load(std::memory_order_relaxed);
  if (delay_pct != 0 && ThreadRng().NextPercent() < delay_pct) {
    HitCounter(s).fetch_add(1, std::memory_order_relaxed);
    if (c.yield_instead.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    } else {
      const std::uint32_t spins = c.delay_spins.load(std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < spins; ++i) {
        CpuRelax();
      }
    }
  }
}

// The RNG is drawn ONLY when throw_pct is armed, so schedules that never arm
// throws keep their exact historical decision streams (same seed => same
// forced-abort/delay sequence as before this mode existed).
inline void MaybeThrow(Site s, SiteConfig& c) {
  const std::uint32_t throw_pct = c.throw_pct.load(std::memory_order_acquire);
  if (throw_pct != 0 && ThreadRng().NextPercent() < throw_pct) {
    HitCounter(s).fetch_add(1, std::memory_order_relaxed);
    throw InjectedFault{s};
  }
}

}  // namespace internal

// Abort-style fire: inject any armed delay, then any armed throw, then decide
// a forced abort. Call sites treat `true` exactly like a real conflict at
// that point.
inline bool FireAbort(Site s) {
  MarkReached(s);
#if defined(SPECTM_SCHED)
  // One integration point for the cooperative scheduler: EVERY planted
  // pause/abort site is a schedule point, so all engines inherit the
  // controller's interleaving control without per-site wiring.
  sched::SchedulePointAtSite(static_cast<int>(s));
#endif
  SiteConfig& c = internal::Config(s);
  const std::uint32_t abort_pct = c.abort_pct.load(std::memory_order_acquire);
  internal::MaybeDelay(s, c);
  internal::MaybeThrow(s, c);
  if (abort_pct != 0 && internal::ThreadRng().NextPercent() < abort_pct) {
    internal::HitCounter(s).fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

// Pause-style fire: delay/yield only — no abort decision, for sites that
// cannot conflict (e.g. the publication sequence after locks are held, where
// a forced abort would have to unwind the bump — widening the window is the
// useful injection there). Throw injection IS honored: pause sites run with
// locks held and gate flags announced, which makes them the harshest unwind
// tests of all, and "every planted site can erupt" is the tentpole's claim.
inline void FirePause(Site s) {
  MarkReached(s);
#if defined(SPECTM_SCHED)
  sched::SchedulePointAtSite(static_cast<int>(s));
#endif
  SiteConfig& c = internal::Config(s);
  internal::MaybeDelay(s, c);
  internal::MaybeThrow(s, c);
}

#else  // !SPECTM_FAILPOINTS

inline constexpr bool kEnabled = false;

#endif  // SPECTM_FAILPOINTS

}  // namespace failpoint
}  // namespace spectm

// The macros reference the site token in both forms so an invalid site fails
// to compile even in production builds, while the disabled form is a pure
// constant expression (see failpoint_test.cc's static_assert).
#if defined(SPECTM_FAILPOINTS)
#define SPECTM_FAILPOINT(site) (::spectm::failpoint::FireAbort(site))
#define SPECTM_FAILPOINT_PAUSE(site) (::spectm::failpoint::FirePause(site))
#else
#define SPECTM_FAILPOINT(site) (static_cast<void>(site), false)
#define SPECTM_FAILPOINT_PAUSE(site) static_cast<void>(site)
#endif

// Pure schedule points (PR 8): mark reach and hand control to the cooperative
// scheduler, but NEVER run the injection machinery — several of these sit on
// exception-unwind paths (gate retract, token release), where a second throw
// would std::terminate. _POINT is a decision point (the controller's policy
// picks who runs next, recorded in the trace); _SPIN is a forced deterministic
// hand-off for unbounded wait loops (gate drain, single-op lock waits,
// backoff), NOT recorded as a decision, so exhaustive exploration stays
// finite while cooperative runs can never livelock on one core.
#if defined(SPECTM_SCHED)
#define SPECTM_SCHED_POINT(site)                 \
  (::spectm::failpoint::MarkReached(site),       \
   ::spectm::sched::SchedulePointAtSite(static_cast<int>(site)))
#define SPECTM_SCHED_SPIN(site)                  \
  (::spectm::failpoint::MarkReached(site),       \
   ::spectm::sched::SpinYieldAtSite(static_cast<int>(site)))
#elif defined(SPECTM_FAILPOINTS)
#define SPECTM_SCHED_POINT(site) (::spectm::failpoint::MarkReached(site))
#define SPECTM_SCHED_SPIN(site) (::spectm::failpoint::MarkReached(site))
#else
#define SPECTM_SCHED_POINT(site) static_cast<void>(site)
#define SPECTM_SCHED_SPIN(site) static_cast<void>(site)
#endif

#endif  // SPECTM_COMMON_FAILPOINT_H_
