// Structure-of-arrays transactional read log.
//
// The full-transaction engines append one (metadata word pointer, expected word)
// pair per transactional read and then walk the whole log on every revalidation —
// per read under local clocks (§4.1's "-l" cost), at commit and extension under
// global clocks. The walk touches only the two fields, so an array-of-structs
// layout wastes half of every fetched cache line and defeats vectorization. This
// log keeps the two fields in separate contiguous lanes:
//
//   ptrs_  : std::atomic<Word>*[]   — the orec (orec layouts) or data word (val
//                                     layout) each entry revalidates against
//   words_ : Word[]                 — the word the entry expects to observe there
//                                     (an unlocked orec body, or the value read)
//
// so a validation walk streams two dense arrays (8 entries per cache line per
// lane) and the batch kernel (src/tm/validate_batch.h) can gather-compare four
// entries per iteration.
//
// Growth policy: capacity starts at one chunk (kChunkEntries) and doubles; it is
// PERSISTED across transactions — Clear() resets the size only, so a descriptor
// that once ran a 10k-read transaction never reallocates for one again (§4.1
// allocates descriptors once per thread for exactly this reason). Growth can only
// happen inside PushBack, never during a walk, so lane pointers taken for a walk
// stay valid for its duration.
#ifndef SPECTM_COMMON_SOA_LOG_H_
#define SPECTM_COMMON_SOA_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>

#include "src/common/tagged.h"

namespace spectm {

class SoaReadLog {
 public:
  // One chunk = 256 entries = 2 KB ptr lane + 2 KB word lane; matches the seed's
  // read_log.reserve(256) so typical transactions never grow at all.
  static constexpr std::size_t kChunkEntries = 256;

  SoaReadLog() { Reallocate(kChunkEntries); }

  SoaReadLog(const SoaReadLog&) = delete;
  SoaReadLog& operator=(const SoaReadLog&) = delete;

  void Clear() { size_ = 0; }
  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }
  std::size_t Capacity() const { return capacity_; }

  void PushBack(std::atomic<Word>* ptr, Word expected) {
    if (size_ == capacity_) {
      Reallocate(capacity_ * 2);
    }
    ptrs_[size_] = ptr;
    words_[size_] = expected;
    ++size_;
  }

  // Dense lanes for validation walks and the batch kernel. Stable until the next
  // PushBack that grows the log.
  std::atomic<Word>* const* Ptrs() const { return ptrs_.get(); }
  const Word* Words() const { return words_.get(); }

  std::atomic<Word>* PtrAt(std::size_t i) const { return ptrs_[i]; }
  Word WordAt(std::size_t i) const { return words_[i]; }

 private:
  void Reallocate(std::size_t new_capacity) {
    std::unique_ptr<std::atomic<Word>*[]> ptrs(new std::atomic<Word>*[new_capacity]);
    std::unique_ptr<Word[]> words(new Word[new_capacity]);
    if (size_ > 0) {
      std::memcpy(ptrs.get(), ptrs_.get(), size_ * sizeof(ptrs[0]));
      std::memcpy(words.get(), words_.get(), size_ * sizeof(words[0]));
    }
    ptrs_ = std::move(ptrs);
    words_ = std::move(words);
    capacity_ = new_capacity;
  }

  std::unique_ptr<std::atomic<Word>*[]> ptrs_;
  std::unique_ptr<Word[]> words_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace spectm

#endif  // SPECTM_COMMON_SOA_LOG_H_
