// Fixed-capacity inline vector: storage lives inside the object, no heap traffic.
//
// §2.2: "Focusing on short transactions means that the set of all locations accessed
// can be held in a fixed-size array inline in the TX_RECORD." The full-TM read logs
// solve the same no-allocation problem differently: per-thread SoA arenas whose
// capacity persists across transactions (src/common/soa_log.h).
#ifndef SPECTM_COMMON_INLINE_VEC_H_
#define SPECTM_COMMON_INLINE_VEC_H_

#include <cassert>
#include <cstddef>
#include <utility>

namespace spectm {

template <typename T, std::size_t kCapacity>
class InlineVec {
 public:
  InlineVec() = default;

  // Trivially copyable payloads only; the tx fast paths store PODs.
  static_assert(kCapacity > 0);

  void PushBack(const T& v) {
    assert(size_ < kCapacity);
    items_[size_++] = v;
  }

  template <typename... Args>
  T& EmplaceBack(Args&&... args) {
    assert(size_ < kCapacity);
    items_[size_] = T{std::forward<Args>(args)...};
    return items_[size_++];
  }

  void Clear() { size_ = 0; }
  std::size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  bool Full() const { return size_ == kCapacity; }
  static constexpr std::size_t Capacity() { return kCapacity; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return items_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return items_[i];
  }

  T* begin() { return items_; }
  T* end() { return items_ + size_; }
  const T* begin() const { return items_; }
  const T* end() const { return items_ + size_; }

 private:
  T items_[kCapacity];
  std::size_t size_ = 0;
};

}  // namespace spectm

#endif  // SPECTM_COMMON_INLINE_VEC_H_
