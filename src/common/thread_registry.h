// Process-wide registry of small dense thread ids.
//
// Several runtime components need per-thread state indexed by a compact id:
//   * the epoch-based reclaimer's per-thread epoch slots,
//   * the distributed ("per-thread version numbers", §2.4) commit counters used by
//     value-based validation in the general case,
//   * per-thread statistics in the benchmark harness.
// A thread claims the lowest free slot on first use and releases it at thread exit
// (RAII in the thread_local handle); ids are reused, and iteration only scans up to
// the historical high-water mark.
#ifndef SPECTM_COMMON_THREAD_REGISTRY_H_
#define SPECTM_COMMON_THREAD_REGISTRY_H_

#include <atomic>
#include <cassert>

#include "src/common/cacheline.h"

namespace spectm {

class ThreadRegistry {
 public:
  static constexpr int kMaxThreads = 256;

  // Dense id of the calling thread; claims a slot on first call.
  static int CurrentId() {
    thread_local Handle handle;
    return handle.id;
  }

  // One past the largest id ever claimed; bound for per-thread-state scans.
  static int IdBound() { return id_bound_.load(std::memory_order_acquire); }

 private:
  struct Handle {
    int id;
    Handle() : id(Claim()) {}
    ~Handle() { Release(id); }
  };

  static int Claim() {
    for (int i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (slots_[i]->compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
        int bound = id_bound_.load(std::memory_order_relaxed);
        while (bound < i + 1 && !id_bound_.compare_exchange_weak(
                                    bound, i + 1, std::memory_order_acq_rel)) {
        }
        return i;
      }
    }
    assert(false && "ThreadRegistry: more than kMaxThreads concurrent threads");
    return kMaxThreads - 1;
  }

  static void Release(int id) { slots_[id]->store(false, std::memory_order_release); }

  static inline CacheAligned<std::atomic<bool>> slots_[kMaxThreads]{};
  static inline std::atomic<int> id_bound_{0};
};

}  // namespace spectm

#endif  // SPECTM_COMMON_THREAD_REGISTRY_H_
