// Deterministic per-thread pseudo-random number generation.
//
// Used for workload key selection (§4.4: keys uniform over a predefined range),
// skip-list level generation (§3: level l with probability 1/2^l), and the contention
// manager's randomized linear backoff (§4.1). xorshift128+ is small, fast, and
// allocation-free, which matters because it runs on the benchmark fast path.
#ifndef SPECTM_COMMON_RNG_H_
#define SPECTM_COMMON_RNG_H_

#include <cstdint>

namespace spectm {

// xorshift128+ (Vigna). Not cryptographic; period 2^128 - 1.
class Xorshift128Plus {
 public:
  // Seeds must not both be zero; mix the caller's seed through splitmix64 to guarantee
  // a well-distributed non-zero state even for small consecutive seeds (thread ids).
  explicit Xorshift128Plus(std::uint64_t seed) {
    s0_ = SplitMix64(&seed);
    s1_ = SplitMix64(&seed);
    if (s0_ == 0 && s1_ == 0) {
      s1_ = 1;
    }
  }

  std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform integer in [0, bound). Bound must be nonzero. Uses the widening-multiply
  // trick (Lemire) to avoid the modulo on the hot path.
  std::uint64_t NextBounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform value in [0, 100); convenient for percentage-mix workload decisions.
  std::uint32_t NextPercent() { return static_cast<std::uint32_t>(NextBounded(100)); }

  // Geometric level in [1, max_level]: level l is returned with probability 2^-l
  // (except the tail mass collapses onto max_level). Matches the paper's skip list.
  int NextSkipListLevel(int max_level) {
    std::uint64_t r = Next();
    int level = 1;
    while ((r & 1) == 1 && level < max_level) {
      ++level;
      r >>= 1;
    }
    return level;
  }

  static std::uint64_t SplitMix64(std::uint64_t* state) {
    std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace spectm

#endif  // SPECTM_COMMON_RNG_H_
