// Sharded in-memory KV store ("embedding table") with a batched transactional
// request API — the service-shaped workload layer over the TM engines.
//
// Modeled on the DeepRec EmbeddingVar idiom (BatchLookupKey / GetOrCreateKey
// gather APIs over a sharded concurrent hash backbone), rebuilt on this repo's
// family concept: KvStore<Family> instantiates over any TM family, every batch
// runs as ONE full transaction (descriptor setup amortized across the batch,
// retry at batch granularity), and read-only batches instantiated over the
// ValSnap family execute as pinned-snapshot transactions that never validate
// and never abort (src/tm/mvcc.h).
//
// Shard placement is REGION-ALIGNED with the partitioned commit counter
// (valstrategy.h CounterStripeOf): every shard bump-allocates its bucket heads
// and nodes from 4 KiB pages homed to the stripe `shard % kCounterStripes`, so
// on layouts whose metadata is co-located with the data (the val layout, §2.4)
// a batch that stays inside one shard occupies exactly one counter stripe —
// the region locality the partitioned-NOrec skip (PR 4) was built for, now
// produced by a service access pattern instead of a synthetic slot pool. On
// the hash-scattered orec table the homing is inert (the orec of a slot is
// placement-blind); the store still works, it just measures the partition's
// overhead there, mirroring the OrecLPart caveat in variants.h.
//
// Deletion is tombstone-free by omission: embedding-table workloads are
// get/put/scan-shaped and grow-only, so the store never unlinks nodes — which
// keeps batch retry trivially exception-safe (an aborted attempt's private
// nodes return to a spare list; nothing published is ever reclaimed) and makes
// the arena teardown wholesale.
#ifndef SPECTM_SVC_KV_STORE_H_
#define SPECTM_SVC_KV_STORE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <new>
#include <type_traits>
#include <vector>

#include "src/common/tagged.h"
#include "src/tm/config.h"
#include "src/tm/mvcc.h"
#include "src/tm/val_word.h"
#include "src/tm/valstrategy.h"

namespace spectm {
namespace svc {

// Supplies 4 KiB pages whose CounterStripeOf region index is FIXED per page:
// superpages of kCounterStripes consecutive pages are allocated aligned to
// their own size, so the page at offset s*4KiB provably lives in stripe s.
// Shards covering all stripes consume every sub-page, so nothing is wasted.
class StripePagePool {
 public:
  static constexpr std::size_t kPageBytes = std::size_t{1} << kCounterStripeShift;
  static constexpr std::size_t kSuperBytes =
      kPageBytes * static_cast<std::size_t>(kCounterStripes);

  StripePagePool() = default;
  StripePagePool(const StripePagePool&) = delete;
  StripePagePool& operator=(const StripePagePool&) = delete;

  ~StripePagePool() {
    for (void* super : supers_) {
      ::operator delete(super, std::align_val_t{kSuperBytes});
    }
  }

  // Caller serializes (the store's allocation mutex).
  void* AcquirePage(int stripe) {
    assert(stripe >= 0 && stripe < kCounterStripes);
    std::vector<void*>& free = free_[stripe];
    if (free.empty()) {
      char* super = static_cast<char*>(
          ::operator new(kSuperBytes, std::align_val_t{kSuperBytes}));
      supers_.push_back(super);
      for (int s = 0; s < kCounterStripes; ++s) {
        char* page = super + kPageBytes * static_cast<std::size_t>(s);
        assert(CounterStripeOf(page) == s && "superpage alignment broken");
        free_[s].push_back(page);
      }
    }
    void* page = free.back();
    free.pop_back();
    return page;
  }

 private:
  std::vector<void*> supers_;
  std::vector<void*> free_[kCounterStripes];
};

// Per-key hook for deterministic probe passes: invoked after each key's work
// inside the batch transaction, so tests and benches can interleave single-op
// churn INSIDE the batch window (the RunScanCell idiom from
// bench/abl_readset_layout.cc, lifted to the service API). Empty by default
// and never on the path of a real request loop.
using BatchHook = std::function<void(std::size_t)>;

template <typename Family>
class KvStore {
 public:
  using Slot = typename Family::Slot;
  using FullTx = typename Family::FullTx;

  struct Config {
    std::size_t shards = 8;             // power of two
    std::size_t buckets_per_shard = 64; // hash fan-out within a shard
  };

  explicit KvStore(Config cfg = Config{}) : cfg_(cfg) {
    assert(cfg_.shards >= 1 && (cfg_.shards & (cfg_.shards - 1)) == 0 &&
           "shard count must be a power of two");
    assert(cfg_.buckets_per_shard >= 1);
    shards_.resize(cfg_.shards);
    std::lock_guard<std::mutex> lock(alloc_mu_);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      Shard& shard = shards_[s];
      std::size_t remaining = cfg_.buckets_per_shard;
      while (remaining > 0) {
        const std::size_t take = remaining < kSlotsPerChunk ? remaining : kSlotsPerChunk;
        Slot* chunk = static_cast<Slot*>(
            AllocateLocked(shard, StripeOfShard(s), take * sizeof(Slot)));
        for (std::size_t i = 0; i < take; ++i) {
          new (chunk + i) Slot();
        }
        shard.bucket_chunks.push_back(chunk);
        remaining -= take;
      }
      shard.probe_slot = new (AllocateLocked(shard, StripeOfShard(s), sizeof(Slot))) Slot();
    }
  }

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  ~KvStore() {
    // Quiescent teardown: free the MVCC version chains hanging off every slot
    // the store published (bucket heads, node value/next words) so the val-snap
    // instantiation tears down leak-free; pages themselves free wholesale.
    if constexpr (kValLayout) {
      for (Shard& shard : shards_) {
        for (std::size_t b = 0; b < cfg_.buckets_per_shard; ++b) {
          Slot* head = BucketSlot(shard, b);
          Node* curr = WordToPtr<Node>(Family::RawRead(head));
          ReleaseChain(*head);
          while (curr != nullptr) {
            Node* next = WordToPtr<Node>(Family::RawRead(&curr->next));
            ReleaseChain(curr->value);
            ReleaseChain(curr->next);
            curr = next;
          }
        }
        ReleaseChain(*shard.probe_slot);
      }
    }
  }

  std::size_t shards() const { return cfg_.shards; }

  std::size_t ShardOf(std::uint64_t key) const {
    return static_cast<std::size_t>(HashOf(key)) & (cfg_.shards - 1);
  }

  // The counter stripe a shard's pages are homed to. Meaningful as a conflict
  // region only on the val layout (metadata == data word); on orec layouts the
  // orec table hash-scatters regions and this is just the page placement.
  static int StripeOfShard(std::size_t shard) {
    return static_cast<int>(shard & static_cast<std::size_t>(kCounterStripes - 1));
  }

  // --- Batched request API: one full transaction per call ---------------------

  // Gathers n keys in one (read-only) transaction. out/found may be null when
  // the caller only wants the read traffic (probe passes).
  void BatchGet(const std::uint64_t* keys, std::size_t n, std::uint64_t* out,
                bool* found, const BatchHook& hook = BatchHook()) {
    Family::Full::Atomically([&](FullTx& tx) {
      for (std::size_t i = 0; i < n; ++i) {
        Node* node = FindNode(tx, keys[i]);
        if (!tx.ok()) {
          return;
        }
        const bool hit = node != nullptr;
        std::uint64_t v = 0;
        if (hit) {
          v = DecodeInt(tx.Read(&node->value));
          if (!tx.ok()) {
            return;
          }
        }
        if (out != nullptr) {
          out[i] = v;
        }
        if (found != nullptr) {
          found[i] = hit;
        }
        if (hook) {
          hook(i);
        }
      }
    });
  }

  // Stores n key/value pairs in one transaction, inserting missing keys
  // (GetOrCreateKey semantics). Values must fit EncodeInt (62 bits).
  void BatchPut(const std::uint64_t* keys, const std::uint64_t* vals, std::size_t n,
                const BatchHook& hook = BatchHook()) {
    AttemptScratch scratch(*this);
    Family::Full::Atomically([&](FullTx& tx) {
      scratch.ResetAttempt();
      for (std::size_t i = 0; i < n; ++i) {
        bool inserted = false;
        Node* node = FindOrInsert(tx, keys[i], vals[i], scratch, &inserted);
        if (!tx.ok()) {
          return;
        }
        if (!inserted) {
          tx.Write(&node->value, EncodeInt(vals[i]));
        }
        if (hook) {
          hook(i);
        }
      }
    });
    scratch.Publish();
  }

  // Read-modify-write, per key: fn(i, old_value, found) -> new_value, invoked
  // in key order immediately after that key's read (still inside the batch
  // transaction). The returned value is written back iff the key was found;
  // fn must be a pure function of its arguments (the batch retries as a whole,
  // re-running fn). Missing keys are NOT inserted.
  template <typename Fn>
  void BatchUpdate(const std::uint64_t* keys, std::size_t n, Fn fn,
                   const BatchHook& hook = BatchHook()) {
    Family::Full::Atomically([&](FullTx& tx) {
      for (std::size_t i = 0; i < n; ++i) {
        Node* node = FindNode(tx, keys[i]);
        if (!tx.ok()) {
          return;
        }
        if (node != nullptr) {
          const std::uint64_t old_v = DecodeInt(tx.Read(&node->value));
          if (!tx.ok()) {
            return;
          }
          tx.Write(&node->value, EncodeInt(fn(i, old_v, true)));
        } else {
          (void)fn(i, std::uint64_t{0}, false);
        }
        if (hook) {
          hook(i);
        }
      }
    });
  }

  // Whole-batch read-modify-write: all n keys are read first, then
  // fn(values, found, n) rewrites the value array in place, then every found
  // key is written back — the transfer shape (a later key's new value may
  // depend on an earlier key's old one), atomically per batch. Duplicate keys
  // alias ONE stored value across several array entries: each aliased entry
  // reads the same pre-batch value and the last entry's write wins, so callers
  // doing balance arithmetic must pass distinct keys.
  template <typename Fn>
  void BatchTransact(const std::uint64_t* keys, std::size_t n, Fn fn) {
    std::vector<std::uint64_t> vals(n, 0);
    std::vector<Node*> nodes(n, nullptr);
    Family::Full::Atomically([&](FullTx& tx) {
      for (std::size_t i = 0; i < n; ++i) {
        nodes[i] = FindNode(tx, keys[i]);
        if (!tx.ok()) {
          return;
        }
        vals[i] = nodes[i] != nullptr ? DecodeInt(tx.Read(&nodes[i]->value)) : 0;
        if (!tx.ok()) {
          return;
        }
      }
      std::vector<bool> found(n);
      for (std::size_t i = 0; i < n; ++i) {
        found[i] = nodes[i] != nullptr;
      }
      fn(vals.data(), found, n);
      for (std::size_t i = 0; i < n; ++i) {
        if (nodes[i] != nullptr) {
          tx.Write(&nodes[i]->value, EncodeInt(vals[i]));
        }
      }
    });
  }

  // Contiguous-range gather: reads keys [lo, lo + n) in one transaction and
  // returns the sum of present values (the scan statistic the service
  // reports); per-key results optionally gathered like BatchGet.
  std::uint64_t BatchScan(std::uint64_t lo, std::size_t n, std::uint64_t* out = nullptr,
                          bool* found = nullptr, const BatchHook& hook = BatchHook()) {
    std::uint64_t sum = 0;
    Family::Full::Atomically([&](FullTx& tx) {
      sum = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = lo + static_cast<std::uint64_t>(i);
        Node* node = FindNode(tx, key);
        if (!tx.ok()) {
          return;
        }
        const bool hit = node != nullptr;
        std::uint64_t v = 0;
        if (hit) {
          v = DecodeInt(tx.Read(&node->value));
          if (!tx.ok()) {
            return;
          }
          sum += v;
        }
        if (out != nullptr) {
          out[i] = v;
        }
        if (found != nullptr) {
          found[i] = hit;
        }
        if (hook) {
          hook(i);
        }
      }
    });
    return sum;
  }

  // --- Single-op conveniences (prefill, assertions) ---------------------------

  void Put(std::uint64_t key, std::uint64_t value) { BatchPut(&key, &value, 1); }

  bool Get(std::uint64_t key, std::uint64_t* value) {
    bool found = false;
    BatchGet(&key, 1, value, &found);
    return found;
  }

  // --- Probe surface (tests and deterministic bench passes) -------------------

  // A dedicated slot allocated from `shard`'s stripe-homed pages: single-op
  // churn on it bumps exactly that shard's counter stripe, which is how probe
  // passes drive same- vs cross-stripe traffic deterministically.
  Slot* StripeProbeSlot(std::size_t shard) { return shards_[shard].probe_slot; }

  // Non-transactional lookup of a key's value word (quiescent/test use only):
  // lets a snapshot probe churn a key the read-only batch will re-read.
  Slot* DebugValueSlotOf(std::uint64_t key) {
    Shard& shard = shards_[ShardOf(key)];
    Node* curr = WordToPtr<Node>(Family::RawRead(BucketSlotFor(shard, key)));
    while (curr != nullptr && curr->key < key) {
      curr = WordToPtr<Node>(Family::RawRead(&curr->next));
    }
    return (curr != nullptr && curr->key == key) ? &curr->value : nullptr;
  }

 private:
  static constexpr bool kValLayout = std::is_same_v<Slot, ValSlot>;
  static constexpr std::size_t kSlotsPerChunk = StripePagePool::kPageBytes / sizeof(Slot);

  struct Node {
    std::uint64_t key = 0;
    Slot value;
    Slot next;
  };
  static_assert(sizeof(Node) <= StripePagePool::kPageBytes, "node must fit a page");

  struct Shard {
    std::vector<Slot*> bucket_chunks;  // kSlotsPerChunk heads per chunk
    Slot* probe_slot = nullptr;
    char* cursor = nullptr;            // bump allocator over stripe-homed pages
    std::size_t left = 0;
    std::vector<Node*> spare_nodes;    // acquired but never published
  };

  static std::uint64_t HashOf(std::uint64_t key) {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  Slot* BucketSlot(Shard& shard, std::size_t bucket) {
    return shard.bucket_chunks[bucket / kSlotsPerChunk] + bucket % kSlotsPerChunk;
  }

  Slot* BucketSlotFor(Shard& shard, std::uint64_t key) {
    // Bucket choice uses hash bits disjoint from the shard index.
    return BucketSlot(shard, static_cast<std::size_t>(HashOf(key) >> 24) %
                                 cfg_.buckets_per_shard);
  }

  // Bump allocation from the shard's stripe-homed pages; caller holds alloc_mu_.
  void* AllocateLocked(Shard& shard, int stripe, std::size_t bytes) {
    bytes = (bytes + 15) & ~std::size_t{15};  // keep slots/nodes 16-aligned
    assert(bytes <= StripePagePool::kPageBytes);
    if (shard.left < bytes) {
      shard.cursor = static_cast<char*>(pages_.AcquirePage(stripe));
      shard.left = StripePagePool::kPageBytes;
    }
    void* p = shard.cursor;
    shard.cursor += bytes;
    shard.left -= bytes;
    return p;
  }

  Node* AcquireNode(std::size_t shard_idx) {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    Shard& shard = shards_[shard_idx];
    if (!shard.spare_nodes.empty()) {
      Node* n = shard.spare_nodes.back();
      shard.spare_nodes.pop_back();
      return n;
    }
    return new (AllocateLocked(shard, StripeOfShard(shard_idx), sizeof(Node))) Node();
  }

  void ReturnSpare(std::size_t shard_idx, Node* node) {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    shards_[shard_idx].spare_nodes.push_back(node);
  }

  static void ReleaseChain(Slot& s) {
    if constexpr (kValLayout) {
      mvcc::VersionNode* n = s.versions.load(std::memory_order_relaxed);
      s.versions.store(nullptr, std::memory_order_relaxed);
      while (n != nullptr) {
        mvcc::VersionNode* next = n->next.load(std::memory_order_relaxed);
        delete n;
        n = next;
      }
    } else {
      (void)s;
    }
  }

  // Insert-capable batches park acquired nodes here across retries: an aborted
  // attempt never published its links (updates are deferred to commit), so its
  // nodes recycle into the next attempt; only the committing attempt's linked
  // nodes become owned by the structure.
  class AttemptScratch {
   public:
    explicit AttemptScratch(KvStore& store) : store_(store) {}

    ~AttemptScratch() {
      for (const Pending& p : spare_) {
        store_.ReturnSpare(p.shard, p.node);
      }
    }

    void ResetAttempt() {
      // The previous attempt aborted: everything it linked is private again.
      spare_.insert(spare_.end(), linked_.begin(), linked_.end());
      linked_.clear();
    }

    Node* TakeNode(std::size_t shard) {
      for (std::size_t i = 0; i < spare_.size(); ++i) {
        if (spare_[i].shard == shard) {
          Node* n = spare_[i].node;
          linked_.push_back(spare_[i]);
          spare_[i] = spare_.back();
          spare_.pop_back();
          return n;
        }
      }
      Node* n = store_.AcquireNode(shard);
      linked_.push_back(Pending{shard, n});
      return n;
    }

    void Publish() { linked_.clear(); }  // committed: the store owns them now

   private:
    struct Pending {
      std::size_t shard;
      Node* node;
    };
    KvStore& store_;
    std::vector<Pending> spare_;
    std::vector<Pending> linked_;
  };

  // Sorted-chain walk inside the caller's transaction; null on miss or !tx.ok().
  Node* FindNode(FullTx& tx, std::uint64_t key) {
    Shard& shard = shards_[ShardOf(key)];
    Node* curr = WordToPtr<Node>(tx.Read(BucketSlotFor(shard, key)));
    while (tx.ok() && curr != nullptr && curr->key < key) {
      curr = WordToPtr<Node>(tx.Read(&curr->next));
    }
    if (!tx.ok() || curr == nullptr || curr->key != key) {
      return nullptr;
    }
    return curr;
  }

  // Find-or-create: a missing key links a privately initialized node (value
  // already set — TmHashSet's publish-by-single-link idiom), so the caller
  // skips the transactional value write for fresh inserts.
  Node* FindOrInsert(FullTx& tx, std::uint64_t key, std::uint64_t value,
                     AttemptScratch& scratch, bool* inserted) {
    *inserted = false;
    const std::size_t shard_idx = ShardOf(key);
    Shard& shard = shards_[shard_idx];
    Slot* prev_link = BucketSlotFor(shard, key);
    Node* curr = WordToPtr<Node>(tx.Read(prev_link));
    while (tx.ok() && curr != nullptr && curr->key < key) {
      prev_link = &curr->next;
      curr = WordToPtr<Node>(tx.Read(prev_link));
    }
    if (!tx.ok()) {
      return nullptr;
    }
    if (curr != nullptr && curr->key == key) {
      return curr;
    }
    Node* node = scratch.TakeNode(shard_idx);
    node->key = key;
    Family::RawWrite(&node->value, EncodeInt(value));  // private until the link commits
    Family::RawWrite(&node->next, PtrToWord(curr));
    tx.Write(prev_link, PtrToWord(node));
    *inserted = true;
    return node;
  }

  Config cfg_;
  std::mutex alloc_mu_;  // guards pages_ and every shard's allocator state
  StripePagePool pages_;
  std::vector<Shard> shards_;
};

}  // namespace svc
}  // namespace spectm

#endif  // SPECTM_SVC_KV_STORE_H_
