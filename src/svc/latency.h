// Fixed-bucket log-scale latency histogram for the KV service layer.
//
// The service bench reports p50/p99/p999 per batch request, which needs a
// recorder that is (a) allocation-free on the hot path — one array index per
// sample, no sorting, no reservoir — and (b) exactly testable: the bucket
// geometry is a pure function of the sample value, so tests feed synthetic
// counts and assert the percentile landing bucket precisely (no wall clock
// anywhere in tests; cycle counts appear only in bench binaries via CycleNow).
//
// Geometry (HdrHistogram-style sub-bucketed log scale): values below
// 2^kSubBits land in exact unit buckets; above that, each power-of-two octave
// is split into 2^kSubBits linear sub-buckets, so relative bucket width is
// bounded by 2^-kSubBits (~3% at kSubBits = 5) at every magnitude. Percentile
// queries return the bucket's UPPER bound — a conservative (never optimistic)
// latency figure, and the property the exactness tests pin: the reported
// percentile is within one bucket of the true order statistic.
#ifndef SPECTM_SVC_LATENCY_H_
#define SPECTM_SVC_LATENCY_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace spectm {
namespace svc {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;                // 32 sub-buckets per octave
  static constexpr std::uint64_t kSub = 1ULL << kSubBits;
  static constexpr int kMaxExp = 40;                // covers ~2^40 (minutes of cycles)
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kSub) * static_cast<std::size_t>(kMaxExp - kSubBits + 1);

  // Bucket index for a sample value. Total function: values past the covered
  // range clamp into the last bucket (they still count; the percentile just
  // saturates at the range ceiling).
  static std::size_t BucketOf(std::uint64_t v) {
    if (v < kSub) {
      return static_cast<std::size_t>(v);  // exact unit buckets
    }
    int e = 63 - __builtin_clzll(v);  // v in [2^e, 2^(e+1))
    if (e >= kMaxExp) {
      return kBuckets - 1;
    }
    const std::uint64_t sub = (v >> (e - kSubBits)) - kSub;  // linear within octave
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(e - kSubBits) + 1) * kSub + sub);
  }

  // Largest value mapping to `idx` (the conservative percentile representative).
  static std::uint64_t BucketUpperBound(std::size_t idx) {
    if (idx < kSub) {
      return idx;
    }
    const std::uint64_t octave = idx / kSub - 1;  // shift applied within the octave
    const std::uint64_t sub = idx % kSub;
    return ((kSub + sub + 1) << octave) - 1;
  }

  void Record(std::uint64_t v) {
    ++counts_[BucketOf(v)];
    ++count_;
    if (v > max_) {
      max_ = v;
    }
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  std::uint64_t Count() const { return count_; }
  std::uint64_t Max() const { return max_; }

  // Value at percentile p (0 < p <= 100): the upper bound of the bucket holding
  // the ceil(p% * count)-th smallest sample. p == 100 reports the exact
  // recorded maximum (not a bucket bound). Returns 0 on an empty histogram.
  std::uint64_t ValueAtPercentile(double p) const {
    if (count_ == 0) {
      return 0;
    }
    if (p >= 100.0) {
      return max_;
    }
    std::uint64_t target =
        static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.9999999);
    if (target < 1) {
      target = 1;
    }
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) {
        return BucketUpperBound(i);
      }
    }
    return max_;  // unreachable with count_ > 0
  }

  std::uint64_t P50() const { return ValueAtPercentile(50.0); }
  std::uint64_t P99() const { return ValueAtPercentile(99.0); }
  std::uint64_t P999() const { return ValueAtPercentile(99.9); }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

// Cycle counter for BENCH binaries only (tests feed synthetic values, so the
// histogram itself stays deterministic). rdtsc where the ISA has it; the
// steady-clock tick fallback keeps non-x86 builds honest rather than fast.
inline std::uint64_t CycleNow() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace svc
}  // namespace spectm

#endif  // SPECTM_SVC_LATENCY_H_
