// Bounded Zipfian rank generator (Gray et al., "Quickly generating
// billion-record synthetic databases" — the YCSB construction) over the
// deterministic xorshift128+ stream.
//
// theta in [0, 1): 0 degenerates to uniform; 0.99 is the classic YCSB hot-key
// skew. NextRank() returns a 0-based rank with rank 0 the hottest item;
// callers map ranks onto keys (svc/driver.h scatters them through a bijection
// so the hot set spreads across shards instead of clustering in key order).
//
// Everything is seeded and replay-identical: same (n, theta, seed) => same
// rank stream, which is what lets the service tests pin frequency-rank
// properties and the bench commit deterministic workload shapes
// (tests/svc/zipf_test.cc).
#ifndef SPECTM_SVC_ZIPF_H_
#define SPECTM_SVC_ZIPF_H_

#include <cassert>
#include <cmath>
#include <cstdint>

#include "src/common/rng.h"

namespace spectm {
namespace svc {

class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n >= 2 && "a Zipfian needs at least two items");
    assert(theta >= 0.0 && theta < 1.0 && "theta must lie in [0, 1)");
    zetan_ = Zeta(n, theta);
    const double zeta2 = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
  }

  // 0-based rank; rank 0 is drawn with probability ~ 1/zetan.
  std::uint64_t NextRank() {
    const double u = NextUnit();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const double r = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t rank = static_cast<std::uint64_t>(r);
    if (rank >= n_) {
      rank = n_ - 1;  // pow round-up at the tail
    }
    return rank;
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Harmonic-like normalizer: sum_{i=1..n} 1/i^theta. O(n) once per generator;
  // service key spaces are <= a few hundred K, so construction stays cheap.
  static double Zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

 private:
  // Uniform double in [0, 1) with 53 significant bits.
  double NextUnit() {
    return static_cast<double>(rng_.Next() >> 11) * 0x1.0p-53;
  }

  std::uint64_t n_;
  double theta_;
  Xorshift128Plus rng_;
  double zetan_;
  double alpha_;
  double eta_;
};

// Rank -> key bijection over a power-of-two key space: an odd multiplier is
// invertible mod 2^k, so hot ranks scatter across the whole space (and hence
// across hash shards) instead of piling into the first region. Pure function:
// the test battery replays it.
inline std::uint64_t ScatterRank(std::uint64_t rank, std::uint64_t key_space_pow2) {
  return (rank * 0x9e3779b97f4a7c15ULL) & (key_space_pow2 - 1);
}

}  // namespace svc
}  // namespace spectm

#endif  // SPECTM_SVC_ZIPF_H_
