// Request-loop harness for the KV service scenario: turns "millions of users
// hitting an embedding table" into a seeded, replay-identical stream of batch
// requests over KvStore<Family>.
//
// Key popularity is Zipfian over ranks (svc/zipf.h) with ranks scattered
// through an odd-multiplier bijection, so the hot set spreads across shards —
// the skew lives in FREQUENCY, not in address order. A `region_local` mode
// instead builds every batch from a single shard's key list, which is the
// stripe-locality shape the partitioned commit counter (valstrategy.h) skips
// on: benches flip this one knob to move between cross-stripe and
// stripe-resident traffic.
//
// Latency is recorded per BATCH (one transaction = one service request) into
// the caller's LatencyHistogram through an injected clock function; tests pass
// a synthetic counter and stay wall-clock-free, benches pass CycleNow.
#ifndef SPECTM_SVC_DRIVER_H_
#define SPECTM_SVC_DRIVER_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/svc/kv_store.h"
#include "src/svc/latency.h"
#include "src/svc/zipf.h"

namespace spectm {
namespace svc {

struct DriverConfig {
  std::uint64_t key_space = 1ULL << 14;  // power of two; fully prefilled
  double zipf_theta = 0.99;              // 0 = uniform, 0.99 = YCSB hot-key skew
  std::size_t batch_size = 8;
  int get_pct = 70;                      // remainder after get+put is BatchScan
  int put_pct = 20;
  std::uint64_t seed = 0x5eedULL;
  bool region_local = false;             // one shard per batch (stripe-resident)
};

// Clock injected per call so the histogram never owns a time source.
using NowFn = std::uint64_t (*)();

template <typename Family>
class RequestDriver {
 public:
  RequestDriver(KvStore<Family>& store, DriverConfig cfg)
      : store_(store),
        cfg_(cfg),
        zipf_(cfg.key_space, cfg.zipf_theta, cfg.seed),
        rng_(Xorshift128Plus::SplitMix64(&cfg.seed) ^ 0x9e3779b97f4a7c15ULL) {
    assert((cfg_.key_space & (cfg_.key_space - 1)) == 0 &&
           "key space must be a power of two");
    assert(cfg_.batch_size >= 1 && cfg_.batch_size <= cfg_.key_space);
    keys_.resize(cfg_.batch_size);
    vals_.resize(cfg_.batch_size);
    if (cfg_.region_local) {
      shard_keys_.resize(store_.shards());
      for (std::uint64_t k = 0; k < cfg_.key_space; ++k) {
        shard_keys_[store_.ShardOf(k)].push_back(k);
      }
    }
  }

  // Populates the whole key space (value = key + 1) in batch-sized chunks —
  // the service never sees a miss afterwards, so found-rates don't perturb
  // percentile comparisons across configs.
  void Prefill() {
    std::vector<std::uint64_t> keys(cfg_.batch_size);
    std::vector<std::uint64_t> vals(cfg_.batch_size);
    for (std::uint64_t base = 0; base < cfg_.key_space; base += cfg_.batch_size) {
      std::size_t n = 0;
      for (; n < cfg_.batch_size && base + n < cfg_.key_space; ++n) {
        keys[n] = base + n;
        vals[n] = base + n + 1;
      }
      store_.BatchPut(keys.data(), vals.data(), n);
    }
  }

  // One service request: draws an op and a batch of keys, runs it as a single
  // transaction, optionally records the batch latency. Returns the number of
  // keys touched (= batch size), the unit bench throughput is counted in.
  std::size_t Step(LatencyHistogram* hist = nullptr, NowFn now = nullptr) {
    const std::size_t n = cfg_.batch_size;
    const int op = rng_.NextPercent();
    const std::uint64_t t0 = now != nullptr ? now() : 0;
    if (op < cfg_.get_pct) {
      FillKeys();
      store_.BatchGet(keys_.data(), n, vals_.data(), nullptr);
    } else if (op < cfg_.get_pct + cfg_.put_pct) {
      FillKeys();
      for (std::size_t i = 0; i < n; ++i) {
        vals_[i] = rng_.Next() >> 8;  // keep clear of the EncodeInt tag bits
      }
      store_.BatchPut(keys_.data(), vals_.data(), n);
    } else {
      std::uint64_t lo = DrawKey();
      if (lo + n > cfg_.key_space) {
        lo = cfg_.key_space - n;
      }
      scan_sink_ += store_.BatchScan(lo, n);
    }
    if (hist != nullptr && now != nullptr) {
      hist->Record(now() - t0);
    }
    return n;
  }

  // Scan results fold in here so the compiler can't elide the read traffic.
  std::uint64_t scan_sink() const { return scan_sink_; }

  // Exposed for tests: the key the next rank maps to, and the batch filler.
  std::uint64_t DrawKey() { return ScatterRank(zipf_.NextRank(), cfg_.key_space); }

  const std::vector<std::uint64_t>& FillKeys() {
    if (!cfg_.region_local) {
      for (std::size_t i = 0; i < cfg_.batch_size; ++i) {
        keys_[i] = DrawKey();
      }
      return keys_;
    }
    // Region-local: the Zipfian picks the shard (via its hottest key), then the
    // whole batch stays inside that shard's key list — every transactional
    // word the batch touches lives in pages homed to one counter stripe.
    const std::vector<std::uint64_t>& pool = shard_keys_[store_.ShardOf(DrawKey())];
    for (std::size_t i = 0; i < cfg_.batch_size; ++i) {
      keys_[i] = pool[rng_.NextBounded(pool.size())];
    }
    return keys_;
  }

 private:
  KvStore<Family>& store_;
  DriverConfig cfg_;
  ZipfianGenerator zipf_;
  Xorshift128Plus rng_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> vals_;
  std::vector<std::vector<std::uint64_t>> shard_keys_;
  std::uint64_t scan_sink_ = 0;
};

}  // namespace svc
}  // namespace spectm

#endif  // SPECTM_SVC_DRIVER_H_
